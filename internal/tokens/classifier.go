package tokens

import "sort"

// Source says where a token was observed.
type Source string

// Token sources: "We consider all query parameters, localStorage, and
// cookie values. We call them tokens." (§3.2)
const (
	SourceQueryParam   Source = "queryparam"
	SourceCookie       Source = "cookie"
	SourceLocalStorage Source = "localstorage"
)

// Observation is one sighting of a token during the crawl.
type Observation struct {
	// Key is the parameter/cookie/storage key under which the value was
	// seen.
	Key string
	// Value is the token itself.
	Value string
	// Source says which storage or channel carried it.
	Source Source
	// Host is the domain (cookies), origin (localStorage), or request
	// host (query params) of the sighting.
	Host string
	// Instance identifies the browser instance (= crawl iteration); the
	// paper runs "each iteration ... in a new browser instance".
	Instance string
	// AdIndex is the index of the ad URL on the results page the token
	// came from, or -1 when not applicable. Filter (ii) compares token
	// values across the ad URLs of one results page.
	AdIndex int
	// Revisit marks observations from the extra iteration executed "one
	// day later" on the same profile (filter iii).
	Revisit bool
}

// Reason explains why a token was discarded (or kept).
type Reason string

// Discard reasons, in pipeline order.
const (
	ReasonCrossInstance Reason = "constant-across-instances" // filter (i)
	ReasonAdIdentifier  Reason = "ad-identifier"             // filter (ii)
	ReasonSessionID     Reason = "session-identifier"        // filter (iii)
	ReasonHeuristics    Reason = "value-heuristics"          // filter (iv)
	ReasonManualPass    Reason = "manual-pass"
	ReasonUserID        Reason = "user-identifier" // survived everything
)

// Result is the classification outcome.
type Result struct {
	// TotalTokens is the number of unique token values observed (the
	// paper's dataset had 6,971).
	TotalTokens int
	// UserIDs is the set of values classified as user identifiers (the
	// paper ended with 1,258).
	UserIDs map[string]bool
	// ByReason counts unique tokens per discard reason (UserID counts
	// the survivors), reproducing the §3.2 funnel.
	ByReason map[Reason]int
	// reasons maps each value to its (first) classification.
	reasons map[string]Reason
}

// IsUserID reports whether value was classified as a user identifier.
func (r *Result) IsUserID(value string) bool { return r.UserIDs[value] }

// ReasonFor returns the classification of a value ("" if never seen).
func (r *Result) ReasonFor(value string) Reason { return r.reasons[value] }

// Classifier runs the §3.2 pipeline. The zero value is ready to use.
type Classifier struct {
	// KeepManualPass disables the final manual-equivalent pass when
	// false is wanted; default (false zero value) runs it. Set
	// SkipManualPass to compare the funnel before/after, as the paper
	// reports both counts.
	SkipManualPass bool
}

// Classify applies filters (i)–(iv) and the manual pass to the
// observations and returns the classification of every unique value.
func Classify(obs []Observation) *Result { return (&Classifier{}).Classify(obs) }

// Classify implements the pipeline as a fold over an Accumulator: the
// classification of a batch is identical to observing the same
// observations one at a time and asking for the Result.
func (c *Classifier) Classify(obs []Observation) *Result {
	acc := c.NewAccumulator()
	for _, o := range obs {
		acc.Observe(o)
	}
	return acc.Result()
}

// valueCtx tracks one token value's sightings (filter i).
type valueCtx struct {
	instances map[string]bool
}

// adCtx groups filter-(ii) contexts: per (instance, key), the set of
// values seen across different ad URLs of one results page.
type adCtx struct {
	byAdIndex map[int]string
	distinct  map[string]bool
}

// sessCtx groups filter-(iii) contexts: per (instance, key, host,
// source), base-visit vs revisit values.
type sessCtx struct {
	base, revisit map[string]bool
}

// Accumulator is the incremental form of the §3.2 pipeline: feed it
// observations one sighting (or one crawl iteration) at a time via
// Observe, then call Result to run the filters. Its state is the
// classifier's grouping indexes — O(unique tokens), never the
// observation stream itself — which is what lets streaming consumers
// classify a crawl without retaining the dataset. Observation order
// does not affect the Result.
type Accumulator struct {
	cfg      Classifier
	values   map[string]*valueCtx
	adKeys   map[[2]string]*adCtx
	sessKeys map[[4]string]*sessCtx
}

// NewAccumulator returns an empty accumulator for this classifier's
// configuration.
func (c *Classifier) NewAccumulator() *Accumulator {
	return &Accumulator{
		cfg:      *c,
		values:   make(map[string]*valueCtx),
		adKeys:   make(map[[2]string]*adCtx),
		sessKeys: make(map[[4]string]*sessCtx),
	}
}

// NewAccumulator returns an empty accumulator with the default pipeline
// (manual pass enabled), the incremental counterpart of Classify.
func NewAccumulator() *Accumulator { return (&Classifier{}).NewAccumulator() }

// Observe folds one sighting into the accumulator.
func (a *Accumulator) Observe(o Observation) {
	if o.Value == "" {
		return
	}
	v := a.values[o.Value]
	if v == nil {
		v = &valueCtx{instances: make(map[string]bool)}
		a.values[o.Value] = v
	}
	v.instances[o.Instance] = true

	if o.AdIndex >= 0 {
		k := [2]string{o.Instance, o.Key}
		ad := a.adKeys[k]
		if ad == nil {
			ad = &adCtx{byAdIndex: make(map[int]string), distinct: make(map[string]bool)}
			a.adKeys[k] = ad
		}
		ad.byAdIndex[o.AdIndex] = o.Value
		ad.distinct[o.Value] = true
	}

	sk := [4]string{o.Instance, o.Key, o.Host, string(o.Source)}
	s := a.sessKeys[sk]
	if s == nil {
		s = &sessCtx{base: make(map[string]bool), revisit: make(map[string]bool)}
		a.sessKeys[sk] = s
	}
	if o.Revisit {
		s.revisit[o.Value] = true
	} else {
		s.base[o.Value] = true
	}
}

// Result runs filters (i)–(iv) and the manual pass over everything
// observed so far. It does not mutate the accumulator: observing more
// and asking again yields the classification of the larger stream.
func (a *Accumulator) Result() *Result {
	// Filter (ii): keys whose values differ across ad URLs on the same
	// page mark all their values as ad identifiers.
	adValues := make(map[string]bool)
	for _, ad := range a.adKeys {
		if len(ad.distinct) > 1 && len(ad.byAdIndex) > 1 {
			for v := range ad.distinct {
				adValues[v] = true
			}
		}
	}
	// Filter (iii): keys whose value changed between base visit and the
	// next-day revisit mark those values as session identifiers.
	sessValues := make(map[string]bool)
	for _, s := range a.sessKeys {
		if len(s.base) == 0 || len(s.revisit) == 0 {
			continue
		}
		changed := false
		for v := range s.base {
			if !s.revisit[v] {
				changed = true
			}
		}
		if changed {
			for v := range s.base {
				sessValues[v] = true
			}
			for v := range s.revisit {
				sessValues[v] = true
			}
		}
	}

	res := &Result{
		TotalTokens: len(a.values),
		UserIDs:     make(map[string]bool),
		ByReason:    make(map[Reason]int),
		reasons:     make(map[string]Reason),
	}
	// Deterministic iteration order for stable funnel counts.
	ordered := make([]string, 0, len(a.values))
	for v := range a.values {
		ordered = append(ordered, v)
	}
	sort.Strings(ordered)

	for _, val := range ordered {
		ctx := a.values[val]
		var reason Reason
		switch {
		case len(ctx.instances) > 1:
			reason = ReasonCrossInstance
		case adValues[val]:
			reason = ReasonAdIdentifier
		case sessValues[val]:
			reason = ReasonSessionID
		case len(val) < MinIDLength || LooksLikeTimestamp(val) ||
			LooksLikeURL(val) || IsEnglishWords(val) || LooksLikePhrase(val):
			reason = ReasonHeuristics
		case !a.cfg.SkipManualPass && (LooksLikeCoordinates(val) ||
			LooksLikeAcronym(val) || isWordCombination(val)):
			reason = ReasonManualPass
		default:
			reason = ReasonUserID
			res.UserIDs[val] = true
		}
		res.reasons[val] = reason
		res.ByReason[reason]++
	}
	return res
}
