package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one loaded, parsed, type-checked unit of analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportMap compiles the transitive closure of the given patterns and
// returns import path → export-data file. The go build cache makes
// repeat calls cheap; the export files are what go/types resolves
// imports against, exactly as the compiler would.
func exportMap(dir string, patterns []string) (map[string]string, error) {
	entries, err := goList(dir, append([]string{"-deps", "-export", "-json=ImportPath,Export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			m[e.ImportPath] = e.Export
		}
	}
	return m, nil
}

// exportImporter returns a go/types importer that resolves every import
// through the export map.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		fh, err := os.Open(f)
		if err != nil {
			return nil, err
		}
		return io.NopCloser(bufio.NewReader(fh)), nil
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// checkFiles type-checks one package's parsed files against the
// importer and returns it as a Package under the given import path.
func checkFiles(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := newInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// Load enumerates the packages matching patterns (relative to dir),
// builds their dependencies' export data, and parses + type-checks
// each matched package from source. Test files are excluded: the
// invariants guard production paths, and tests legitimately use wall
// clocks, math/rand, and error-text asserts.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports, err := exportMap(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %v", name, err)
			}
			files = append(files, f)
		}
		pkg, err := checkFiles(fset, imp, t.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkg.Dir = t.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory of Go files under a
// caller-chosen import path, resolving imports through the export data
// of moduleDir's toolchain. It is the fixture loader: testdata packages
// are not go-listable, and the fake import path lets a fixture land in
// a path-scoped rule's jurisdiction (e.g. a deterministic package for
// detclock, a cmd/ path for exitsafe). Files named *_test.go are
// skipped, mirroring Load.
func LoadDir(moduleDir, fixtureDir, importPath string) (*Package, error) {
	names, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") || strings.HasSuffix(de.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(fixtureDir, de.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			imports[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", fixtureDir)
	}
	var pats []string
	for p := range imports {
		pats = append(pats, p)
	}
	sort.Strings(pats) // the suite lints itself: go list args in stable order
	exports := map[string]string{}
	if len(pats) > 0 {
		exports, err = exportMap(moduleDir, pats)
		if err != nil {
			return nil, err
		}
	}
	pkg, err := checkFiles(fset, exportImporter(fset, exports), importPath, files)
	if err != nil {
		return nil, err
	}
	pkg.Dir = fixtureDir
	return pkg, nil
}
