package lint

import (
	"go/ast"
	"go/token"
)

// stringMatchFuncs are the strings-package predicates that, applied to
// err.Error(), constitute error-text matching.
var stringMatchFuncs = map[string]bool{
	"Contains":    true,
	"ContainsAny": true,
	"HasPrefix":   true,
	"HasSuffix":   true,
	"Index":       true,
	"LastIndex":   true,
	"EqualFold":   true,
	"Count":       true,
}

// Errclass forbids error-text matching in non-test code. PR 6 built a
// typed taxonomy — crawler.ErrorClass, netsim.FaultError, the facade's
// typed sentinels — precisely so behaviour never hangs off an error's
// prose, which changes freely between releases. Three shapes:
//
//   - strings.Contains/HasPrefix/... over err.Error(): match with
//     errors.Is/errors.As or switch on crawler.ErrorClass instead.
//   - err.Error() == "..." (or !=, or as a switch tag): same.
//   - http.Error(w, err.Error(), ...): raw error text on the wire —
//     internal details leak to clients and the response body becomes
//     release-dependent; classify through the fault/error taxonomy.
//
// Tests are excluded at the loader; asserting on rendered error text
// in _test.go files is legitimate.
var Errclass = &Analyzer{
	Name: "errclass",
	Doc:  "forbid error-text matching and raw err.Error() on the wire; use errors.Is/As and typed classes",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if pkg, name, ok := pkgFuncCall(pass.Info, n); ok {
						switch {
						case pkg == "strings" && stringMatchFuncs[name]:
							for _, arg := range n.Args {
								if containsErrorErrorCall(pass.Info, arg) {
									pass.Reportf(n.Pos(),
										"strings.%s on err.Error(): matching on error text; use errors.Is/errors.As or a typed class (crawler.ErrorClass)",
										name)
									break
								}
							}
						case pkg == "net/http" && name == "Error":
							if len(n.Args) >= 2 && containsErrorErrorCall(pass.Info, n.Args[1]) {
								pass.Reportf(n.Pos(),
									"http.Error with raw err.Error(): leaks internal error text to the wire; classify through the fault/error taxonomy")
							}
						}
					}
				case *ast.BinaryExpr:
					if n.Op == token.EQL || n.Op == token.NEQ {
						if errorErrorCall(pass.Info, n.X) || errorErrorCall(pass.Info, n.Y) {
							pass.Reportf(n.Pos(),
								"comparing err.Error() with %s: error text is not an API; use errors.Is/errors.As or a typed class",
								n.Op)
						}
					}
				case *ast.SwitchStmt:
					if n.Tag != nil && errorErrorCall(pass.Info, n.Tag) {
						pass.Reportf(n.Pos(),
							"switch on err.Error(): error text is not an API; switch on a typed class instead")
					}
				}
				return true
			})
		}
	},
}
