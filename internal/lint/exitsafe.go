package lint

import (
	"go/ast"
)

// Exitsafe confines os.Exit and log.Fatal* to command main()/run()
// wrappers. The PR-8 audit converted every cmd to the
// `func main() { os.Exit(run()) }` shape precisely because os.Exit
// skips deferred cleanup — profile flushes, checkpoint finalization,
// event-sink closes. This analyzer locks that audit in:
//
//   - in library packages, os.Exit/log.Fatal* is always a finding —
//     libraries return errors, the process edge decides the exit code;
//   - in package main, only main() and run() may exit, and only when
//     no defer statement precedes the call in that function (a
//     preceding defer is cleanup the exit would skip);
//   - an exit inside a function literal is always a finding: the
//     closure can run anywhere, under anyone's defers.
var Exitsafe = &Analyzer{
	Name: "exitsafe",
	Doc:  "os.Exit/log.Fatal only in cmd main()/run() wrappers with no pending defers",
	Run: func(pass *Pass) {
		isMain := pass.Pkg.Name() == "main"
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkExits(pass, fd, isMain)
			}
		}
	},
}

// exitCall reports whether call is os.Exit or log.Fatal/Fatalf/Fatalln.
func exitCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	pkg, name, ok := pkgFuncCall(pass.Info, call)
	if !ok {
		return "", false
	}
	switch {
	case pkg == "os" && name == "Exit":
		return "os.Exit", true
	case pkg == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln"):
		return "log." + name, true
	}
	return "", false
}

func checkExits(pass *Pass, fd *ast.FuncDecl, isMain bool) {
	allowedFunc := isMain && fd.Recv == nil && (fd.Name.Name == "main" || fd.Name.Name == "run")

	// Defer positions at function level (defers inside nested literals
	// run when the literal returns, so they are not skipped by a later
	// exit in the outer function).
	var defers []ast.Node
	walkSkippingFuncLits(fd.Body, func(n ast.Node) {
		if d, ok := n.(*ast.DeferStmt); ok {
			defers = append(defers, d)
		}
	})

	var inspect func(n ast.Node, inLit bool)
	inspect = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if lit, ok := m.(*ast.FuncLit); ok && m != n {
				inspect(lit.Body, true)
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, isExit := exitCall(pass, call)
			if !isExit {
				return true
			}
			switch {
			case inLit:
				pass.Reportf(call.Pos(),
					"%s inside a function literal: the closure may run under pending defers; return an error instead", name)
			case !allowedFunc:
				pass.Reportf(call.Pos(),
					"%s outside a command main()/run() wrapper: deferred cleanup (profiles, checkpoints, sinks) would be skipped; return an exit code or error instead", name)
			default:
				for _, d := range defers {
					if d.Pos() < call.Pos() {
						pass.Reportf(call.Pos(),
							"%s after a defer in %s: the deferred cleanup at %s would be skipped; run the work in run() and exit from main()",
							name, fd.Name.Name, pass.Fset.Position(d.Pos()))
						break
					}
				}
			}
			return true
		})
	}
	inspect(fd.Body, false)
}

// walkSkippingFuncLits visits every node in n except those inside
// nested function literals.
func walkSkippingFuncLits(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil {
			visit(m)
		}
		return true
	})
}
