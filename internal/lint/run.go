package lint

import "fmt"

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Detclock,
		Detrand,
		Maporder,
		Errclass,
		Ctxflow,
		Exitsafe,
	}
}

// ByName resolves a comma-separable selection against All, for the
// -checks flag.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunPackages applies the analyzers to each package, enforces the
// //lint:allow directive contract, and returns the surviving findings
// in stable order.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows, directiveDiags := collectDirectives(pkg, known)
		var diags []Diagnostic
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
				diags:    &diags,
			}
			a.Run(pass)
		}
		for _, d := range diags {
			if !allows.allows(d) {
				out = append(out, d)
			}
		}
		// Directive findings are not themselves allowlistable: a
		// reasonless allow cannot excuse itself.
		out = append(out, directiveDiags...)
	}
	sortDiagnostics(out)
	return out
}
