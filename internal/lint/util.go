package lint

import (
	"go/ast"
	"go/types"
)

// pkgFuncCall reports whether call invokes a package-level function of
// the package with import path pkgPath, returning the function name.
// Aliased imports are resolved through the type info, so `import
// t "time"; t.Now()` still reads as ("time", "Now").
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[ident].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// errorErrorCall reports whether expr is a call of the error
// interface's Error method — `err.Error()` for any error-typed err.
func errorErrorCall(info *types.Info, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	recv := selection.Recv()
	return types.Implements(recv, errorInterface) ||
		types.Implements(types.NewPointer(recv), errorInterface)
}

// containsErrorErrorCall walks expr for any err.Error() call.
func containsErrorErrorCall(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && errorErrorCall(info, e) {
			found = true
			return false
		}
		return true
	})
	return found
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// hasContextParam reports whether any parameter of sig (including
// variadic position) is a context.Context.
func hasContextParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// calleeSignature resolves the signature of a call's function, whether
// it is a plain function, method, or function-typed value. Conversions
// and builtin calls return nil.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	if tv.IsType() { // conversion, not a call
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

// mapRangeExpr reports whether the range statement iterates a map and
// is therefore order-randomized.
func mapRangeExpr(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}
