package lint

import (
	"go/ast"
	"go/types"
)

// Ctxflow enforces the v2 facade's cancellation contract (PR 4) in
// library packages. Two rules:
//
//   - context.Background()/context.TODO() is forbidden outside cmd/,
//     examples/, and tests: a library that mints its own root context
//     breaks the chain from the caller's signal handler, so Ctrl-C
//     stops delivering partial results.
//
//   - an exported function that loops over context-aware work — a
//     for/range body calling anything whose signature takes a
//     context.Context — must itself accept a context.Context. Those
//     loops (iterations, sweep cells, request chains) are exactly the
//     long-running entry points the streaming API promises to cancel
//     within one unit of work.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "library loops over ctx-aware calls must take ctx; no context.Background/TODO outside cmd",
	Applies: func(path string) bool {
		return !isCommandPath(path)
	},
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pkg, name, ok := pkgFuncCall(pass.Info, call); ok && pkg == "context" && (name == "Background" || name == "TODO") {
					pass.Reportf(call.Pos(),
						"context.%s in library code: accept a context.Context from the caller so cancellation propagates (root contexts belong in cmd/)",
						name)
				}
				return true
			})
			for _, decl := range f.Decls {
				checkLoopsTakeContext(pass, decl)
			}
		}
	},
}

func checkLoopsTakeContext(pass *Pass, decl ast.Decl) {
	fd, ok := decl.(*ast.FuncDecl)
	if !ok || fd.Body == nil || !fd.Name.IsExported() {
		return
	}
	def, ok := pass.Info.Defs[fd.Name]
	if !ok {
		return
	}
	sig, ok := def.Type().(*types.Signature)
	if !ok || hasContextParam(sig) {
		return
	}
	// No ctx parameter: find a loop whose body makes a ctx-aware call.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		if callee := firstCtxAwareCall(pass, body); callee != nil {
			pass.Reportf(fd.Name.Pos(),
				"exported %s loops over context-aware calls (%s) but takes no context.Context; long-running entry points must propagate cancellation",
				fd.Name.Name, types.ExprString(callee.Fun))
			return false // one report per function is enough
		}
		return true
	})
}

// firstCtxAwareCall returns the first call in body whose callee's
// signature includes a context.Context parameter, or nil.
func firstCtxAwareCall(pass *Pass, body *ast.BlockStmt) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sig := calleeSignature(pass.Info, call); sig != nil && hasContextParam(sig) {
			found = call
			return false
		}
		return true
	})
	return found
}
