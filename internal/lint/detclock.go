package lint

import "go/ast"

// wallClockFuncs are the time-package functions that read or wait on
// the host's wall clock. Pure value constructors (time.Duration
// arithmetic, time.Unix, time.Date) are fine: they don't observe the
// machine.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Detclock forbids wall-clock reads in deterministic packages.
//
// The byte-identity contract (PR 2: sequential==parallel datasets;
// PR 7: kill/resume; PR 8: telemetry on/off) holds because simulated
// time lives on the browser profiles' virtual clocks, derived purely
// from (seed, config). One time.Now() on a simulated path leaks host
// scheduling into outputs. Wall-clock *telemetry* (stage timings for
// Snapshot percentiles) is legitimate and carries a
// `//lint:allow detclock <reason>` directive at each site.
var Detclock = &Analyzer{
	Name:    "detclock",
	Doc:     "forbid time.Now/Since/Sleep/... in deterministic packages; virtual clocks only",
	Applies: IsDeterministic,
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, name, ok := pkgFuncCall(pass.Info, call)
				if !ok || pkg != "time" || !wallClockFuncs[name] {
					return true
				}
				pass.Reportf(call.Pos(),
					"time.%s in deterministic package %s: simulated paths must use the virtual clock (wall-clock telemetry sites take //lint:allow detclock <reason>)",
					name, pass.Path)
				return true
			})
		}
	},
}
