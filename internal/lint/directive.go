package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The allowlist directive. A finding on a line carrying (or immediately
// following a standalone) `//lint:allow <analyzer> <reason>` comment is
// suppressed — but only when the directive names a real analyzer AND
// carries a non-empty reason. A reasonless or unknown-analyzer
// directive is itself a finding, attributed to the pseudo-analyzer
// "directive", so the allowlist can never silently rot: every
// exemption in the tree documents why it is sound.
const directivePrefix = "//lint:allow"

// DirectiveAnalyzer is the name findings about malformed //lint:allow
// directives are attributed to. It is not a runnable analyzer and
// cannot itself be allowlisted.
const DirectiveAnalyzer = "directive"

// allowSet maps file → line → analyzer name → true for well-formed
// directives.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) add(file string, line int, analyzer string) {
	byLine := s[file]
	if byLine == nil {
		byLine = map[int]map[string]bool{}
		s[file] = byLine
	}
	byAnalyzer := byLine[line]
	if byAnalyzer == nil {
		byAnalyzer = map[string]bool{}
		byLine[line] = byAnalyzer
	}
	byAnalyzer[analyzer] = true
}

func (s allowSet) allows(d Diagnostic) bool {
	return s[d.File][d.Line][d.Analyzer]
}

// collectDirectives scans a package's comments for //lint:allow
// directives. Well-formed ones land in the returned allowSet; malformed
// ones (missing reason, unknown analyzer) come back as findings. known
// names the analyzers a directive may reference.
func collectDirectives(pkg *Package, known map[string]bool) (allowSet, []Diagnostic) {
	allows := allowSet{}
	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		p := pkg.Fset.Position(pos)
		diags = append(diags, Diagnostic{
			Analyzer: DirectiveAnalyzer,
			File:     p.Filename, Line: p.Line, Col: p.Column,
			Message: msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowance — not ours
				}
				// A second "//" ends the directive: fixtures append
				// `// want ...` expectations after it, and prose past
				// the marker is commentary, not reason.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "//lint:allow needs an analyzer name and a reason")
					continue
				}
				name := fields[0]
				if !known[name] {
					report(c.Pos(), "//lint:allow names unknown analyzer "+name)
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "//lint:allow "+name+" needs a reason: say why this use is sound")
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				// A directive sharing its line with code guards that
				// line; a standalone comment guards the next line.
				if standaloneComment(pkg.Fset, f, c) {
					line++
				}
				allows.add(pos.Filename, line, name)
			}
		}
	}
	return allows, diags
}

// standaloneComment reports whether c is the first thing on its line —
// i.e. no declaration, statement, or earlier comment precedes it there.
func standaloneComment(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	first := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !first {
			return false
		}
		if n.Pos() < c.Pos() && fset.Position(n.Pos()).Line == pos.Line {
			first = false
			return false
		}
		return true
	})
	if !first {
		return false
	}
	// Comments are not reached by ast.Inspect's declaration walk;
	// check the file's comment groups too (an earlier comment on the
	// same line means c trails code that trails a comment — rare, but
	// then c is not standalone).
	for _, cg := range f.Comments {
		for _, other := range cg.List {
			if other != c && other.Pos() < c.Pos() && fset.Position(other.Pos()).Line == pos.Line {
				first = false
			}
		}
	}
	return first
}
