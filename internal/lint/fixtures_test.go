package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest contract: fixture
// packages under testdata/src carry `// want `+"`regex`"+` comments on
// the lines where findings are expected, and the test fails on any
// missing or surplus diagnostic. Each case loads one directory under a
// chosen (possibly fake) import path so path-scoped rules — detclock's
// deterministic set, detrand's home package, ctxflow's cmd/ exemption —
// are exercised from both sides of the fence.
var fixtureCases = []struct {
	dir        string
	importPath string
	analyzers  []string
}{
	{"detclock", "searchads/internal/netsim", []string{"detclock"}},
	{"detclock_exempt", "searchads/internal/telemetry", []string{"detclock"}},
	{"detrand", "searchads/internal/workload", []string{"detrand"}},
	{"detrand_exempt", "searchads/internal/detrand", []string{"detrand"}},
	{"maporder", "searchads/internal/maporderfix", []string{"maporder"}},
	{"errclass", "searchads/internal/errclassfix", []string{"errclass"}},
	{"ctxflow", "searchads/internal/ctxflowfix", []string{"ctxflow"}},
	{"ctxflow_cmd", "searchads/cmd/ctxflowfix", []string{"ctxflow"}},
	{"exitsafe_lib", "searchads/internal/exitfix", []string{"exitsafe"}},
	{"exitsafe_cmd", "searchads/cmd/goodexit", []string{"exitsafe"}},
	{"exitsafe_cmdbad", "searchads/cmd/badexit", []string{"exitsafe"}},
	{"directive", "searchads/internal/netsim", []string{"detclock"}},
}

func TestFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			pkg, err := LoadDir(".", filepath.Join("testdata", "src", tc.dir), tc.importPath)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			analyzers, err := ByName(tc.analyzers)
			if err != nil {
				t.Fatal(err)
			}
			checkWants(t, pkg, RunPackages([]*Package{pkg}, analyzers))
		})
	}
}

var (
	// A want clause is `// want` followed by one or more backquoted
	// regexes; it may trail code, stand alone, or — for the directive
	// fixtures — follow a //lint:allow on the same comment.
	wantClauseRe = regexp.MustCompile("// want((?:\\s+`[^`]*`)+)")
	wantPatRe    = regexp.MustCompile("`([^`]*)`")
)

// collectWants extracts the expected-diagnostic regexes per file:line.
func collectWants(t *testing.T, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantClauseRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pm := range wantPatRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(pm[1])
					if err != nil {
						t.Fatalf("%s: bad want regex %q: %v", key, pm[1], err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// checkWants matches diagnostics against want clauses line by line:
// every want must be satisfied by a distinct diagnostic on its line,
// and every diagnostic must be claimed by a want.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	got := map[string][]Diagnostic{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		got[key] = append(got[key], d)
	}
	for key, pats := range wants {
		ds := got[key]
		claimed := make([]bool, len(ds))
		for _, pat := range pats {
			found := false
			for i, d := range ds {
				if !claimed[i] && pat.MatchString(d.Message) {
					claimed[i] = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: no diagnostic matching %q (got %v)", key, pat, ds)
			}
		}
		for i, d := range ds {
			if !claimed[i] {
				t.Errorf("%s: unexpected diagnostic: %s", key, d)
			}
		}
	}
	for key, ds := range got {
		if _, ok := wants[key]; ok {
			continue
		}
		for _, d := range ds {
			t.Errorf("%s: unexpected diagnostic: %s", key, d)
		}
	}
}

// TestRepoClean runs the full suite over the entire module — the same
// gate CI's sadlint step enforces, wired into `go test ./...` so a new
// violation fails the ordinary test run too.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree lint is not a -short test")
	}
	pkgs, err := Load(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags := RunPackages(pkgs, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestByNameRejectsUnknown(t *testing.T) {
	if _, err := ByName([]string{"detclock", "nosuch"}); err == nil {
		t.Fatal("ByName accepted an unknown analyzer name")
	}
}
