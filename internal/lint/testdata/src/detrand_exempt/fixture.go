// math/rand inside internal/detrand itself is the one legal home: the
// Applies filter must keep detrand silent when the fixture is loaded
// under searchads/internal/detrand.
package fixture

import "math/rand"

func Source(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
