// Fixture for the errclass analyzer: matching on error prose —
// substring predicates, equality, switch tags, raw text on the wire —
// is a finding; typed inspection and plain rendering are not.
package fixture

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
)

func Match(err error) bool {
	return strings.Contains(err.Error(), "timeout") // want `strings\.Contains on err\.Error\(\)`
}

func Prefixed(err error) bool {
	return strings.HasPrefix(err.Error(), "netsim:") // want `strings\.HasPrefix on err\.Error\(\)`
}

func Compare(err error) bool {
	return err.Error() == "boom" // want `comparing err\.Error\(\) with ==`
}

func Differ(err error) bool {
	return "boom" != err.Error() // want `comparing err\.Error\(\) with !=`
}

func Tag(err error) int {
	switch err.Error() { // want `switch on err\.Error\(\)`
	case "boom":
		return 1
	}
	return 0
}

func Serve(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), http.StatusBadGateway) // want `http\.Error with raw err\.Error\(\)`
}

var errBoom = errors.New("boom")

// Typed inspection is the sanctioned alternative.
func Typed(err error) bool {
	return errors.Is(err, errBoom)
}

// Rendering error text into a message is not matching on it.
func Render(err error) string {
	return fmt.Sprintf("fixture failed: %v", err)
}

func Annotate(err error) string {
	return "fixture failed: " + err.Error()
}

// Substring predicates over ordinary strings are untouched.
func PlainMatch(s string) bool {
	return strings.Contains(s, "boom")
}
