// Fixture for the ctxflow analyzer in library jurisdiction: no minted
// root contexts, and exported loops over ctx-aware callees must accept
// a context themselves.
package fixture

import "context"

func Root() context.Context {
	return context.Background() // want `context\.Background in library code`
}

func Todo() context.Context {
	return context.TODO() // want `context\.TODO in library code`
}

func process(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

func Sweep(items []int) error { // want `exported Sweep loops over context-aware calls`
	for _, it := range items {
		if err := process(nil, it); err != nil {
			return err
		}
	}
	return nil
}

// Taking the context is the fix, and must be clean.
func Run(ctx context.Context, items []int) error {
	for _, it := range items {
		if err := process(ctx, it); err != nil {
			return err
		}
	}
	return nil
}

// Unexported helpers are the caller's problem, not an API contract.
func sweepLocal(items []int) {
	for _, it := range items {
		_ = process(nil, it)
	}
}

// Exported loops over context-free work need no context.
func Sum(items []int) int {
	total := 0
	for _, it := range items {
		total += double(it)
	}
	return total
}

func double(n int) int { return 2 * n }

var _ = sweepLocal
