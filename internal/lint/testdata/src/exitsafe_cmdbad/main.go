// Fixture for exitsafe inside package main: exits are findings when a
// defer is already pending, when they sit outside the main()/run()
// wrappers, or when they hide inside a function literal.
package main

import (
	"fmt"
	"os"
)

func main() {
	defer fmt.Println("cleanup")
	os.Exit(1) // want `os\.Exit after a defer in main`
}

func helper() {
	os.Exit(2) // want `os\.Exit outside a command main\(\)/run\(\) wrapper`
}

func run() int {
	go func() {
		os.Exit(3) // want `os\.Exit inside a function literal`
	}()
	return 0
}

var _ = helper
var _ = run
