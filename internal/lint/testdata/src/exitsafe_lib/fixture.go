// Fixture for the exitsafe analyzer in a library package: any process
// exit is a finding — libraries return errors, the process edge decides
// the exit code.
package fixture

import (
	"log"
	"os"
)

func Fail() {
	os.Exit(1) // want `os\.Exit outside a command main\(\)/run\(\) wrapper`
}

func Fatal() {
	log.Fatalf("boom: %d", 1) // want `log\.Fatalf outside a command main\(\)/run\(\) wrapper`
}

func Fatalln() {
	log.Fatalln("boom") // want `log\.Fatalln outside a command main\(\)/run\(\) wrapper`
}
