// The sanctioned command shape: main is a wrapper with no defers, run
// carries the defers and returns the exit code. exitsafe must be
// silent.
package main

import (
	"fmt"
	"os"
)

func main() { os.Exit(run()) }

func run() int {
	defer fmt.Println("cleanup runs before the process exits")
	return 0
}
