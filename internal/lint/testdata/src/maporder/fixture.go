// Fixture for the maporder analyzer: map iteration feeding an output
// sink (append, fmt, Write-family, sequential encode, string concat)
// is a finding unless the collected output is sorted; map-index writes
// and numeric accumulation stay legal.
package fixture

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

func Unsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside range over map m`
	}
	return out
}

// The collect-then-sort idiom is the sanctioned shape.
func SortedAfter(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func Printed(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside range over map m`
	}
}

func Written(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `strings\.Builder\.WriteString inside range over map m`
	}
	return b.String()
}

func Encoded(m map[string]int) {
	enc := json.NewEncoder(os.Stdout)
	for _, v := range m {
		enc.Encode(v) // want `json\.Encoder\.Encode inside range over map m`
	}
}

func Concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string concatenation inside range over map m`
	}
	return s
}

// Order-independent loop bodies are fine: map-index writes and sums.
func Merge(dst, src map[string]int) int {
	total := 0
	for k, v := range src {
		dst[k] += v
		total += v
	}
	return total
}

// Ranging over the sorted key slice (not the map) is the fix the
// analyzer suggests, and must itself be clean.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []string
	for _, k := range keys {
		out = append(out, k+"!")
	}
	return out
}

// The scratch-slice idiom: the append target is sorted inside the loop
// before any consumer sees it, so per-iteration order never escapes.
func Scratch(src map[string][]int) int {
	total := 0
	var scratch []int
	for _, vs := range src {
		scratch = scratch[:0]
		scratch = append(scratch, vs...)
		sort.Ints(scratch)
		if len(scratch) > 0 {
			total += scratch[0]
		}
	}
	return total
}

// Appending into a fresh per-iteration value carries no
// cross-iteration order and is not flagged.
func FreshPerIteration(src map[string][]int) map[string][]int {
	out := map[string][]int{}
	for k, vs := range src {
		out[k] = append([]int(nil), vs...)
	}
	return out
}

// Marshalling the whole map at once is fine: encoding/json sorts keys.
func Marshalled(m map[string]int) ([]byte, error) {
	return json.Marshal(m)
}
