// Fixture for the detclock analyzer, loaded under a deterministic
// import path (searchads/internal/netsim). Every wall-clock read or
// wait is a finding; pure time-value construction is not.
package fixture

import (
	"time"

	tm "time"
)

func Stamp() time.Time {
	return time.Now() // want `time\.Now in deterministic package`
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in deterministic package`
}

func Wait() {
	time.Sleep(time.Millisecond) // want `time\.Sleep in deterministic package`
	<-time.After(time.Second)    // want `time\.After in deterministic package`
}

func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time\.Until in deterministic package`
}

func Ticker() *time.Ticker {
	return time.NewTicker(time.Second) // want `time\.NewTicker in deterministic package`
}

// Aliased imports do not hide the clock: resolution is by package
// object, not by the literal selector text.
func Aliased() tm.Time {
	return tm.Now() // want `time\.Now in deterministic package`
}

// Value constructors observe nothing about the machine and stay legal.
func PureConstruction() time.Time {
	return time.Unix(0, 0).Add(3 * time.Second)
}

// A well-formed directive suppresses the finding on its line.
func AllowedTelemetry() time.Time {
	return time.Now() //lint:allow detclock wall-clock telemetry stamp for fixture purposes, never reaches outputs
}
