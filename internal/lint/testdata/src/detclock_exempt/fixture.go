// The same wall-clock reads as the detclock fixture, but loaded under
// searchads/internal/telemetry — a package outside the determinism
// contract. The Applies filter must keep detclock silent here.
package fixture

import "time"

func Stamp() time.Time {
	return time.Now()
}

func Wait() {
	time.Sleep(time.Millisecond)
}
