// The same root-context mint as the library fixture, but loaded under
// searchads/cmd/... — the process edge where signal.NotifyContext and
// context.Background are exactly right. ctxflow must stay silent.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

func run(ctx context.Context) error {
	for i := 0; i < 3; i++ {
		if err := step(ctx, i); err != nil {
			return err
		}
	}
	return nil
}

func step(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}
