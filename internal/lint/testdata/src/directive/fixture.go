// Fixture for the //lint:allow directive contract, loaded under a
// deterministic path so detclock has jurisdiction. A directive without
// a reason, or naming an unknown analyzer, suppresses nothing and is
// itself a finding — attributed to the pseudo-analyzer "directive",
// which can never be allowlisted.
package fixture

import "time"

func NoReason() time.Time {
	return time.Now() //lint:allow detclock // want `time\.Now in deterministic package` `needs a reason`
}

func Unknown() time.Time {
	return time.Now() //lint:allow nosuchcheck looks plausible // want `time\.Now in deterministic package` `unknown analyzer nosuchcheck`
}

// A well-formed same-line directive suppresses exactly its line.
func Reasoned() time.Time {
	return time.Now() //lint:allow detclock fixture telemetry stamp, never reaches outputs
}

// A standalone directive guards the next line.
func Standalone() time.Time {
	//lint:allow detclock fixture telemetry stamp on the following line
	return time.Now()
}

// The directive guards one line only: this read is past the guarded
// line and must still be a finding.
func PastGuard() time.Duration {
	//lint:allow detclock fixture telemetry stamp on the following line
	t0 := time.Now()
	return time.Since(t0) // want `time\.Since in deterministic package`
}
