// Fixture for the detrand analyzer: every stochastic stdlib import is
// a finding outside internal/detrand, regardless of alias.
package fixture

import (
	crand "crypto/rand"  // want `import "crypto/rand": non-deterministic randomness`
	"math/rand"          // want `import "math/rand": non-deterministic randomness`
	rand2 "math/rand/v2" // want `import "math/rand/v2": non-deterministic randomness`
)

var (
	_ = rand.Int
	_ = rand2.Int
	_ = crand.Reader
)
