// Package lint is the repo-specific static-analysis suite: it
// machine-checks the invariants every PR so far has defended by hand —
// byte-identical reports across sequential/parallel runs, kill/resume
// cycles, and telemetry on/off.
//
// The suite deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, Diagnostic, want-comment fixtures) but is built
// entirely on the standard library: packages are enumerated with
// `go list -deps -export -json` and type-checked with go/types against
// the toolchain's export data (go/importer with a lookup function over
// the build cache). The build environment for this repo has no module
// proxy access and an empty module cache, so go.mod stays
// dependency-free by construction; see internal/lint/README.md.
//
// The checked invariants, one analyzer each:
//
//	detclock — no wall clock (time.Now/Since/Sleep/After/...) in
//	           deterministic packages; wall-clock telemetry sites carry
//	           a //lint:allow detclock <reason> directive.
//	detrand  — no math/rand or crypto/rand outside internal/detrand.
//	maporder — no range over a map that feeds an output sink (append,
//	           io/fmt writes, sequential encoders, hashes) without a
//	           sort; the classic byte-identity killer.
//	errclass — no error-text matching (strings.Contains on .Error(),
//	           == against .Error()) and no raw err.Error() on the wire
//	           via http.Error; use errors.Is/As and crawler.ErrorClass.
//	ctxflow  — exported library functions that loop over ctx-aware
//	           calls must accept a context.Context themselves, and
//	           context.Background()/TODO() stays out of library code.
//	exitsafe — os.Exit/log.Fatal only in a command main()/run()
//	           wrapper with no deferred cleanup pending.
//
// cmd/sadlint is the multichecker binary; CI runs it over ./... and
// over this package itself.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check. Run inspects a single
// type-checked package via the Pass and reports findings through it.
type Analyzer struct {
	Name string
	Doc  string
	// Applies filters packages by import path; nil means every package.
	Applies func(path string) bool
	Run     func(*Pass)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package's import path as the runner classifies it
	// (fixtures may present a fake path to exercise path-scoped rules).
	Path string

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed to the
// analyzer that produced it. The JSON form is what `sadlint -json`
// emits, so field names are part of the CI-artifact contract.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// sortDiagnostics orders findings by file, line, column, analyzer —
// the stable order both the CLI and the JSON artifact use, so CI
// artifacts diff cleanly across runs.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// modulePath is the import-path root every path-scoped rule keys on.
const modulePath = "searchads"

// deterministicPkgs are the packages whose behaviour must be a pure
// function of (seed, config): no wall clock, and everything the
// byte-identity property tests cover. The list matches ISSUE/ROADMAP's
// determinism contract plus the pure-simulation packages added since.
var deterministicPkgs = map[string]bool{
	modulePath + "/internal/netsim":     true,
	modulePath + "/internal/browser":    true,
	modulePath + "/internal/crawler":    true,
	modulePath + "/internal/analysis":   true,
	modulePath + "/internal/sweep":      true,
	modulePath + "/internal/detrand":    true,
	modulePath + "/internal/urlx":       true,
	modulePath + "/internal/websim":     true,
	modulePath + "/internal/serp":       true,
	modulePath + "/internal/storage":    true,
	modulePath + "/internal/workload":   true,
	modulePath + "/internal/adtech":     true,
	modulePath + "/internal/advertiser": true,
	modulePath + "/internal/entities":   true,
	modulePath + "/internal/filterlist": true,
	modulePath + "/internal/intern":     true,
	modulePath + "/internal/tokens":     true,
}

// IsDeterministic reports whether the import path names a package under
// the virtual-clock determinism contract.
func IsDeterministic(path string) bool { return deterministicPkgs[path] }

// isCommandPath reports whether the import path is a command or example
// main — the process-edge code where wall clock, ctx roots, and
// os.Exit are legitimate.
func isCommandPath(path string) bool {
	return strings.HasPrefix(path, modulePath+"/cmd/") ||
		strings.HasPrefix(path, modulePath+"/examples/")
}
