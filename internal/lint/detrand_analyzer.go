package lint

import "strings"

// forbiddenRandImports are the stochastic stdlib packages. math/rand's
// global source is seeded from runtime state, crypto/rand is entropy by
// definition — either one on a simulated path makes equal configs
// diverge, which is exactly what internal/detrand's splitmix64
// hierarchy exists to prevent (PR 2).
var forbiddenRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// Detrand forbids math/rand and crypto/rand imports everywhere outside
// internal/detrand itself (tests are excluded at the loader: shuffled
// kill points and fuzz corpora are fine in _test.go files).
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid math/rand and crypto/rand outside internal/detrand; derive from the seed hierarchy",
	Applies: func(path string) bool {
		return path != modulePath+"/internal/detrand"
	},
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			for _, spec := range f.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if forbiddenRandImports[path] {
					pass.Reportf(spec.Pos(),
						"import %q: non-deterministic randomness; derive a generator from the seed hierarchy (internal/detrand) instead",
						path)
				}
			}
		}
	},
}
