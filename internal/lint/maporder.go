package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder flags `range` over a map whose body feeds an output sink —
// the classic byte-identity killer: Go randomizes map iteration order,
// so anything appended, written, sequentially encoded, hashed, or
// string-concatenated inside the loop lands in a different order every
// run. The sink taxonomy is the one found in the analysis, sweep, and
// telemetry renderers:
//
//   - append(s, ...) — building an output slice. Exempt when the same
//     function sorts that slice after the loop (the collect-then-sort
//     idiom telemetry.Snapshot and adtech.Domains use).
//   - fmt.Fprint*/Print* and Write/WriteString/... on any io.Writer
//     (strings.Builder, bytes.Buffer, hash.Hash, files) — bytes leave
//     in iteration order; no post-hoc sort can fix them.
//   - (*json.Encoder).Encode — sequential JSON emission. (A single
//     json.Marshal of a whole map is fine: encoding/json sorts keys.)
//   - s += ... string concatenation — order-dependent accumulation.
//
// Map-index writes and integer accumulation inside the loop are
// order-independent and stay legal.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration feeding output (append/write/encode/hash) without sorting",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFuncMapRanges(pass, fd.Body)
			}
		}
	},
}

func checkFuncMapRanges(pass *Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if rng, ok := n.(*ast.RangeStmt); ok && mapRangeExpr(pass.Info, rng) {
			ranges = append(ranges, rng)
		}
		return true
	})
	for _, rng := range ranges {
		checkMapRange(pass, body, rng)
	}
}

// checkMapRange inspects one map-range body for sinks. funcBody is the
// enclosing function's full body, scanned for a post-loop sort that
// exempts append sinks.
func checkMapRange(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	mapExpr := types.ExprString(rng.X)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkSinkCall(pass, funcBody, rng, mapExpr, n)
		case *ast.AssignStmt:
			// s += expr on a string: order-dependent concatenation.
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if tv, ok := pass.Info.Types[n.Lhs[0]]; ok {
					if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(),
							"string concatenation inside range over map %s: iteration order is random; collect and sort the keys first",
							mapExpr)
					}
				}
			}
		}
		return true
	})
}

func checkSinkCall(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, mapExpr string, call *ast.CallExpr) {
	// append(target, ...) — exempt if target is sorted later in the
	// same function (after this append: either past the loop, or
	// in-loop before a per-iteration consumer, the scratch-slice
	// idiom). Appends into a fresh literal/conversion build a new
	// value per iteration and carry no cross-iteration order.
	if ident, ok := call.Fun.(*ast.Ident); ok && ident.Name == "append" {
		if _, isBuiltin := pass.Info.Uses[ident].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			switch call.Args[0].(type) {
			case *ast.Ident, *ast.SelectorExpr:
			default:
				return
			}
			target := types.ExprString(call.Args[0])
			if !sortedAfter(pass, funcBody, call.Pos(), target) {
				pass.Reportf(call.Pos(),
					"append to %s inside range over map %s: iteration order is random; sort %s after the loop or range over sorted keys",
					target, mapExpr, target)
			}
		}
		return
	}

	if pkg, name, ok := pkgFuncCall(pass.Info, call); ok {
		if pkg == "fmt" && (strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print")) {
			pass.Reportf(call.Pos(),
				"fmt.%s inside range over map %s: output leaves in random iteration order; range over sorted keys",
				name, mapExpr)
		}
		return
	}

	// Method sinks: Write-family on io.Writer implementers (builders,
	// buffers, hashes, files) and Encode on *json.Encoder.
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok {
		return
	}
	recv := selection.Recv()
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		if implementsWriter(recv) {
			pass.Reportf(call.Pos(),
				"%s.%s inside range over map %s: bytes leave in random iteration order; range over sorted keys",
				types.TypeString(recv, types.RelativeTo(pass.Pkg)), sel.Sel.Name, mapExpr)
		}
	case "Encode":
		if isJSONEncoder(recv) {
			pass.Reportf(call.Pos(),
				"json.Encoder.Encode inside range over map %s: elements encode in random iteration order; range over sorted keys",
				mapExpr)
		}
	}
}

// sortedAfter reports whether funcBody contains, after the append at
// appendPos, a recognized sort call naming the same expression — the
// sort/slices stdlib sorters or a local helper whose name starts with
// "sort" (sortStrings, sortBeacons, ...).
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, appendPos token.Pos, target string) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < appendPos {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == target {
				found = true
			}
		}
		return true
	})
	return found
}

func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	if pkg, name, ok := pkgFuncCall(pass.Info, call); ok {
		switch pkg {
		case "sort":
			switch name {
			case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
				return true
			}
		case "slices":
			switch name {
			case "Sort", "SortFunc", "SortStableFunc":
				return true
			}
		}
		return false
	}
	if ident, ok := call.Fun.(*ast.Ident); ok {
		return strings.HasPrefix(ident.Name, "sort") || strings.HasPrefix(ident.Name, "Sort")
	}
	return false
}

// ioWriterIface is io.Writer, constructed so the analyzer need not
// import io's type-checked form.
var ioWriterIface = func() *types.Interface {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", byteSlice))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}()

func implementsWriter(t types.Type) bool {
	return types.Implements(t, ioWriterIface) ||
		types.Implements(types.NewPointer(t), ioWriterIface)
}

func isJSONEncoder(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Encoder" && obj.Pkg() != nil && obj.Pkg().Path() == "encoding/json"
}
