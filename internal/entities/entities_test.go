package entities

import (
	"encoding/json"
	"testing"
)

func TestEntityOf(t *testing.T) {
	l := Default()
	cases := []struct{ host, want string }{
		{"ad.doubleclick.net", "Google"},
		{"clickserve.dartsearch.net", "Google"},
		{"www.googleadservices.com", "Google"},
		{"bat.bing.com", "Microsoft"},
		{"ad.atdmt.com", "Microsoft"},
		{"pixel.everesttech.net", "Adobe"},
		{"6102.xg4ken.com", "Kenshoo"},
		{"monitor.ppcprotect.com", "PPCProtect"},
		{"tpt.mediaplex.com", "Conversant Media"},
		{"click.linksynergy.com", "Rakuten"},
		{"t.myvisualiq.net", "Nielsen"},
		{"improving.duckduckgo.com", "DuckDuckGo"},
		{"t23.intelliad.de", Unknown},
		{"1045.netrk.net", Unknown},
		{"metricswift.example", Unknown},
		{"", Unknown},
	}
	for _, c := range cases {
		if got := l.EntityOf(c.host); got != c.want {
			t.Errorf("EntityOf(%q) = %q, want %q", c.host, got, c.want)
		}
	}
}

func TestSameEntity(t *testing.T) {
	l := Default()
	if !l.SameEntity("google.com", "ad.doubleclick.net") {
		t.Error("google.com and doubleclick.net are both Google")
	}
	if l.SameEntity("google.com", "bing.com") {
		t.Error("Google != Microsoft")
	}
	if l.SameEntity("unknown-a.example", "unknown-b.example") {
		t.Error("two unknown domains must not be the same entity")
	}
}

func TestAddOverride(t *testing.T) {
	l := Default()
	l.Add("TestOrg", "netrk.net")
	if got := l.EntityOf("1045.netrk.net"); got != "TestOrg" {
		t.Fatalf("override failed: %q", got)
	}
	l.Add("Empty", "") // ignored
	for _, e := range l.Entities() {
		if e == "Empty" && len(l.Domains("Empty")) > 0 {
			t.Fatal("empty domain stored")
		}
	}
}

func TestExactHostPrecedence(t *testing.T) {
	l := New()
	l.Add("Site", "example.com")
	l.Add("CDNCo", "cdn.example.com")
	if got := l.EntityOf("cdn.example.com"); got != "CDNCo" {
		t.Fatalf("exact host should win: %q", got)
	}
	if got := l.EntityOf("www.example.com"); got != "Site" {
		t.Fatalf("registrable fallback: %q", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := Default()
	data, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDisconnectJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatalf("round trip lost entries: %d != %d", back.Len(), l.Len())
	}
	if back.EntityOf("criteo.net") != "Criteo" {
		t.Fatal("round trip lost Criteo")
	}
}

func TestParseBadJSON(t *testing.T) {
	if _, err := ParseDisconnectJSON([]byte("{not json")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestInventoryCoversPaperOrganisations(t *testing.T) {
	// Table 3's row set (minus "unknown"): every org the paper names
	// must exist in the default list.
	l := Default()
	want := []string{
		"Adobe", "Conversant Media", "DuckDuckGo", "Facebook", "Google",
		"Kenshoo", "Microsoft", "Nielsen", "PPCProtect", "Qwant",
		"Rakuten", "StartPage",
	}
	have := map[string]bool{}
	for _, e := range l.Entities() {
		have[e] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("entity %q missing from default list", w)
		}
	}
	if l.Len() < 30 {
		t.Errorf("default list too small: %d domains", l.Len())
	}
}

func TestDomainsSorted(t *testing.T) {
	l := Default()
	ds := l.Domains("Google")
	for i := 1; i < len(ds); i++ {
		if ds[i-1] > ds[i] {
			t.Fatalf("domains not sorted: %v", ds)
		}
	}
}
