// Package entities implements a Disconnect-style entity list: a mapping
// from web domains to the organisations operating them. The paper uses
// the Disconnect Entity List ("a dictionary where keys represent entities
// such as Google, Microsoft, and Facebook, and values represent the web
// domains that belong to each entity", §3.2) to group redirectors
// (Table 3) and destination-page trackers (Table 5) by organisation.
package entities

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"searchads/internal/urlx"
)

// Unknown is the organisation reported for domains not in the list,
// matching the "unknown" rows of Tables 3 and 5.
const Unknown = "unknown"

// List maps organisations to their domains and supports reverse lookup.
type List struct {
	byEntity map[string][]string
	byDomain map[string]string
}

// New returns an empty list.
func New() *List {
	return &List{
		byEntity: make(map[string][]string),
		byDomain: make(map[string]string),
	}
}

// Add registers domains as belonging to entity. Later registrations win,
// which lets callers overlay corrections on the embedded data.
func (l *List) Add(entity string, domains ...string) {
	for _, d := range domains {
		d = strings.ToLower(strings.TrimPrefix(d, "."))
		if d == "" {
			continue
		}
		l.byDomain[d] = entity
		l.byEntity[entity] = append(l.byEntity[entity], d)
	}
}

// EntityOf returns the organisation owning host. The host is first
// reduced to its registrable domain; exact-host entries take precedence
// over registrable-domain entries. Unknown is returned for unlisted
// domains ("to get the entity of a tracker, we iterate over all values
// and search to what entity is the tracker domain associated", §3.2).
func (l *List) EntityOf(host string) string {
	h := strings.ToLower(urlx.Hostname(host))
	if e, ok := l.byDomain[h]; ok {
		return e
	}
	if e, ok := l.byDomain[urlx.RegistrableDomain(h)]; ok {
		return e
	}
	return Unknown
}

// SameEntity reports whether two hosts belong to the same known
// organisation. Two unknown domains are never "same entity": the paper's
// privacy reasoning treats each unknown party as distinct.
func (l *List) SameEntity(a, b string) bool {
	ea, eb := l.EntityOf(a), l.EntityOf(b)
	return ea != Unknown && ea == eb
}

// Entities returns the sorted list of known organisations.
func (l *List) Entities() []string {
	out := make([]string, 0, len(l.byEntity))
	for e := range l.byEntity {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Domains returns the sorted domains of one entity.
func (l *List) Domains(entity string) []string {
	out := append([]string(nil), l.byEntity[entity]...)
	sort.Strings(out)
	return out
}

// Len reports the number of domain entries.
func (l *List) Len() int { return len(l.byDomain) }

// MarshalJSON renders the list in the Disconnect entity-list JSON shape:
// {"entity": {"properties": [domains...]}}.
func (l *List) MarshalJSON() ([]byte, error) {
	type props struct {
		Properties []string `json:"properties"`
	}
	m := make(map[string]props, len(l.byEntity))
	for e := range l.byEntity {
		m[e] = props{Properties: l.Domains(e)}
	}
	return json.Marshal(m)
}

// ParseDisconnectJSON loads a list from Disconnect entity-list JSON.
func ParseDisconnectJSON(data []byte) (*List, error) {
	var m map[string]struct {
		Properties []string `json:"properties"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("entities: parse: %w", err)
	}
	l := New()
	// Sort entity names for deterministic later-wins behaviour.
	names := make([]string, 0, len(m))
	for e := range m {
		names = append(names, e)
	}
	sort.Strings(names)
	for _, e := range names {
		l.Add(e, m[e].Properties...)
	}
	return l, nil
}

var (
	defaultOnce sync.Once
	defaultList *List
)

// Default returns the embedded entity list covering the simulated web.
// The organisation inventory matches the paper's Tables 3 and 5. The
// list is built once per process and shared — it is read-only after
// construction, and default-configured analysis accumulators compare it
// by identity when merging.
func Default() *List {
	defaultOnce.Do(func() { defaultList = buildDefault() })
	return defaultList
}

func buildDefault() *List {
	l := New()
	l.Add("Google",
		"google.com", "googleadservices.com", "doubleclick.net",
		"dartsearch.net", "googlesyndication.com", "google-analytics.com",
		"googletagmanager.com", "adservice.google.com", "gstatic.com",
		"youtube.com",
	)
	l.Add("Microsoft",
		"bing.com", "microsoft.com", "clarity.ms", "msn.com",
		"atdmt.com", "live.com", "linkedin.com",
	)
	l.Add("DuckDuckGo", "duckduckgo.com")
	l.Add("StartPage", "startpage.com")
	l.Add("Qwant", "qwant.com")
	l.Add("Facebook", "facebook.com", "facebook.net", "instagram.com")
	l.Add("Amazon", "amazon-adsystem.com", "amazon.com", "media-amazon.com")
	l.Add("Criteo", "criteo.com", "criteo.net")
	l.Add("Adobe", "everesttech.net", "adobe.com", "omtrdc.net", "demdex.net")
	l.Add("Kenshoo", "xg4ken.com", "kenshoo.com")
	l.Add("PPCProtect", "ppcprotect.com")
	l.Add("ClickCease", "clickcease.com")
	l.Add("Conversant Media", "mediaplex.com", "conversantmedia.com")
	l.Add("Rakuten", "linksynergy.com", "rakuten.com")
	l.Add("Nielsen", "myvisualiq.net", "nielsen.com")
	l.Add("Awin", "awin1.com", "zenaps.com")
	l.Add("Effiliation", "effiliation.com")
	l.Add("Adlucent", "adlucent.com")
	// Note: intelliad.de, netrk.net and the *.example analytics domains
	// are deliberately absent — they are the "unknown" long tail.
	return l
}
