package searchads_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"searchads"
	"searchads/internal/netsim"
)

// TestWorldOverRealHTTP serves the simulated web on a real loopback
// listener (the cmd/servesim path) and walks a full ad-click redirect
// chain with net/http: SERP → ad href → 302 hops → advertiser landing.
func TestWorldOverRealHTTP(t *testing.T) {
	world := searchads.NewStudy(searchads.Config{Seed: 61, QueriesPerEngine: 5}).World()
	srv := httptest.NewServer(&netsim.HTTPBridge{Net: world.Net})
	defer srv.Close()

	client := srv.Client()
	client.CheckRedirect = func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse // follow manually, like the paper's tracing
	}

	get := func(raw string) (*http.Response, string) {
		t.Helper()
		u, err := url.Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		req, _ := http.NewRequest(http.MethodGet, srv.URL+u.RequestURI(), nil)
		req.Host = u.Host
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	// 1. The Bing SERP over real TCP.
	serpURL := "https://www.bing.com/search?q=" + url.QueryEscape(world.Queries["bing"][0])
	resp, body := get(serpURL)
	if resp.StatusCode != 200 {
		t.Fatalf("SERP status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "data-ad=") {
		t.Fatalf("SERP HTML carries no ads:\n%.400s", body)
	}
	// MUID arrives as a real Set-Cookie header.
	var sawMUID bool
	for _, c := range resp.Cookies() {
		if c.Name == "MUID" {
			sawMUID = true
		}
	}
	if !sawMUID {
		t.Fatal("MUID Set-Cookie missing over the bridge")
	}

	// 2. Extract the first ad href from the rendered HTML.
	idx := strings.Index(body, `href="https://www.bing.com/aclk`)
	if idx < 0 {
		t.Fatalf("no bing.com/aclk href in SERP HTML")
	}
	rest := body[idx+len(`href="`):]
	href := htmlUnescape(rest[:strings.IndexByte(rest, '"')])

	// 3. Walk the chain, validating each hop via status + Location —
	// exactly the paper's §3.2 methodology, over real HTTP.
	hops := 0
	current := href
	for {
		resp, _ := get(current)
		if resp.StatusCode == http.StatusFound {
			loc := resp.Header.Get("Location")
			if loc == "" {
				t.Fatal("302 without Location")
			}
			current = loc
			hops++
			if hops > 10 {
				t.Fatal("chain too long")
			}
			continue
		}
		if resp.StatusCode != 200 {
			t.Fatalf("chain ended with status %d at %s", resp.StatusCode, current)
		}
		break
	}
	final, _ := url.Parse(current)
	if !strings.HasSuffix(final.Host, ".example") {
		t.Fatalf("chain did not land on an advertiser: %s", current)
	}
	if hops == 0 {
		t.Fatal("no redirect hops observed")
	}
}

func htmlUnescape(s string) string {
	r := strings.NewReplacer("&amp;", "&", "&lt;", "<", "&gt;", ">", "&quot;", `"`)
	return r.Replace(s)
}
