module searchads

go 1.24
