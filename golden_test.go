package searchads_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"searchads"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden report corpus from current output")

// goldenCells are the pinned (seed, config) cells of the golden-report
// corpus: three qualitatively different studies whose rendered and JSON
// reports are committed under testdata/golden/ and gated byte-for-byte
// in CI. Any change to crawl order, identifier derivation, analysis
// folding, or report formatting shows up here as a diff — deliberate
// changes re-pin with `go test -run TestGoldenReports -update .`.
var goldenCells = []struct {
	name string
	cfg  searchads.Config
}{
	{
		// The smallest honest end-to-end study: sequential, flat storage.
		name: "baseline",
		cfg: searchads.Config{
			Seed:             101,
			Engines:          []string{"google", "bing"},
			QueriesPerEngine: 12,
		},
	},
	{
		// Partitioned cookie jars + the embedded filter lists: exercises
		// the storage model and blocked-request accounting.
		name: "partitioned_filter",
		cfg: searchads.Config{
			Seed:             202,
			Engines:          []string{"google", "bing", "duckduckgo"},
			QueriesPerEngine: 10,
			Storage:          searchads.PartitionedStorage,
			Filter:           searchads.DefaultFilterEngine(),
		},
	},
	{
		// Bot-hostile faults at 10%: retries, failed iterations, and the
		// crawl-loss table all appear in the report.
		name: "bot_hostile",
		cfg: searchads.Config{
			Seed:             303,
			Engines:          []string{"google", "bing"},
			QueriesPerEngine: 10,
			FaultProfile:     "bot-hostile",
			FaultRate:        0.1,
		},
	},
}

// TestGoldenReports regenerates each corpus cell and compares the
// rendered and JSON reports byte-for-byte against testdata/golden/.
// With -update it rewrites the corpus instead.
func TestGoldenReports(t *testing.T) {
	for _, cell := range goldenCells {
		t.Run(cell.name, func(t *testing.T) {
			report, err := searchads.NewStudy(cell.cfg).Analyze(t.Context())
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			jsonBytes, err := report.JSON()
			if err != nil {
				t.Fatalf("JSON: %v", err)
			}
			checkGolden(t, cell.name+".txt", []byte(report.Render()))
			checkGolden(t, cell.name+".json", jsonBytes)
		})
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file: %v (run `go test -run TestGoldenReports -update .` to create it)", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from the golden corpus (%d bytes now, %d pinned): first divergence at byte %d\nre-pin deliberate changes with `go test -run TestGoldenReports -update .`",
			name, len(got), len(want), firstDiff(got, want))
	}
}

// firstDiff returns the index of the first differing byte (or the
// shorter length when one output is a prefix of the other).
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
