// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each bench
// times the computation that produces the artifact and logs the rows the
// paper reports; run with -v to see them:
//
//	go test -bench=. -benchmem -v
package searchads_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"searchads"
	"searchads/internal/analysis"
	"searchads/internal/crawler"
	"searchads/internal/filterlist"
	"searchads/internal/netsim"
	"searchads/internal/tokens"
	"searchads/internal/websim"
)

// benchState is the shared crawl all table/figure benches analyse.
// Built once: a 5-engine, 80-iteration study (the paper's shape at a
// benchmark-friendly scale).
var (
	benchOnce    sync.Once
	benchDataset *searchads.Dataset
	benchReport  *searchads.Report
)

func benchSetup(b *testing.B) (*searchads.Dataset, *searchads.Report) {
	b.Helper()
	benchOnce.Do(func() {
		study := searchads.NewStudy(searchads.Config{Seed: 4242, QueriesPerEngine: 80})
		var err error
		if benchDataset, err = study.Crawl(context.Background()); err != nil {
			b.Fatal(err)
		}
		if benchReport, err = study.Analyze(context.Background()); err != nil {
			b.Fatal(err)
		}
	})
	return benchDataset, benchReport
}

// BenchmarkTable1_CrawlSummary regenerates Table 1 (queries, distinct
// destinations, distinct redirection paths per engine).
func BenchmarkTable1_CrawlSummary(b *testing.B) {
	ds, r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, it := range ds.Iterations {
			_ = analysis.PathOf(it).FullKey()
		}
	}
	b.StopTimer()
	for _, e := range searchads.AllEngines() {
		row := r.Table1[e]
		b.Logf("Table 1 %-12s queries=%d destinations=%d paths=%d",
			e, row.Queries, row.DistinctDestinations, row.DistinctPaths)
	}
}

// BenchmarkSec411_FirstPartyReidentification regenerates §4.1.1: which
// engines store user identifiers in first-party storage on the SERP.
func BenchmarkSec411_FirstPartyReidentification(b *testing.B) {
	ds, r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.Analyze(&searchads.Dataset{Iterations: ds.Iterations[:40]})
	}
	b.StopTimer()
	for _, e := range searchads.AllEngines() {
		b.Logf("Sec 4.1.1 %-12s stores-user-ids=%v keys=%v",
			e, r.Before[e].StoresUserIDs, r.Before[e].IdentifierKeys)
	}
}

// BenchmarkSec412_SERPTrackerRequests regenerates §4.1.2: SERP requests
// matched against the filter lists (the paper finds zero).
func BenchmarkSec412_SERPTrackerRequests(b *testing.B) {
	ds, r := benchSetup(b)
	engine := filterlist.DefaultEngine()
	var reqs []filterlist.RequestInfo
	for _, it := range ds.Iterations {
		for _, req := range it.SERPRequests {
			reqs = append(reqs, filterlist.RequestInfo{
				URL: req.URL, Type: netsim.ResourceType(req.Type),
				FirstParty: req.FirstParty, ThirdParty: req.ThirdParty,
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matched := 0
		for _, req := range reqs {
			if engine.IsTracker(req) {
				matched++
			}
		}
		if matched != 0 {
			b.Fatalf("SERP tracker requests = %d, want 0", matched)
		}
	}
	b.StopTimer()
	for _, e := range searchads.AllEngines() {
		b.Logf("Sec 4.1.2 %-12s tracker-requests=%d/%d",
			e, r.Before[e].TrackerRequests, r.Before[e].TotalRequests)
	}
}

// BenchmarkSec421_PostClickBeacons regenerates §4.2.1: the engines'
// post-click first-party endpoints and whether they carry identifiers.
func BenchmarkSec421_PostClickBeacons(b *testing.B) {
	ds, r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		for _, it := range ds.Iterations {
			for _, req := range it.ClickRequests {
				if req.Initiator == "click" {
					count++
				}
			}
		}
		if count == 0 {
			b.Fatal("no beacons")
		}
	}
	b.StopTimer()
	for _, e := range searchads.AllEngines() {
		for _, beacon := range r.During[e].Beacons {
			b.Logf("Sec 4.2.1 %-12s %-45s count=%d uid-cookie=%d",
				e, beacon.Endpoint, beacon.Count, beacon.WithUIDCookie)
		}
	}
}

// BenchmarkFigure4_RedirectorCountCDF regenerates Figure 4.
func BenchmarkFigure4_RedirectorCountCDF(b *testing.B) {
	ds, r := benchSetup(b)
	byEngine := ds.ByEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, iters := range byEngine {
			counts := make([]int, 0, len(iters))
			for _, it := range iters {
				counts = append(counts, len(analysis.PathOf(it).Redirectors()))
			}
			_ = analysis.NewCDF(counts)
		}
	}
	b.StopTimer()
	for _, e := range searchads.AllEngines() {
		cdf := r.During[e].RedirectorCDF
		b.Logf("Figure 4 %-12s P(<=0)=%.2f P(<=1)=%.2f P(<=2)=%.2f",
			e, cdf.At(0), cdf.At(1), cdf.At(2))
	}
}

// BenchmarkTable2_TopNavigationPaths regenerates Table 2.
func BenchmarkTable2_TopNavigationPaths(b *testing.B) {
	ds, r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths := make(map[string]int)
		for _, it := range ds.Iterations {
			paths[analysis.PathOf(it).Key()]++
		}
		if len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
	b.StopTimer()
	for _, e := range searchads.AllEngines() {
		for _, f := range r.During[e].TopPaths {
			b.Logf("Table 2 %-12s %-80s %.0f%%", e, f.Label, f.Fraction*100)
		}
	}
}

// BenchmarkTable3_OrganisationsInPaths regenerates Table 3.
func BenchmarkTable3_OrganisationsInPaths(b *testing.B) {
	ds, r := benchSetup(b)
	ents := searchads.DefaultEntities()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		orgs := make(map[string]int)
		for _, it := range ds.Iterations {
			for _, site := range analysis.PathOf(it).PathSitesWithoutDestination() {
				orgs[ents.EntityOf(site)]++
			}
		}
		if len(orgs) == 0 {
			b.Fatal("no organisations")
		}
	}
	b.StopTimer()
	for _, e := range searchads.AllEngines() {
		for _, org := range []string{"Google", "Microsoft", "unknown"} {
			b.Logf("Table 3 %-12s %-12s %.0f%%", e, org, r.During[e].OrgFractions[org]*100)
		}
	}
}

// BenchmarkFigure5_UIDRedirectorCDF regenerates Figure 5.
func BenchmarkFigure5_UIDRedirectorCDF(b *testing.B) {
	ds, r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.Analyze(&searchads.Dataset{Iterations: ds.Iterations[:60]})
	}
	b.StopTimer()
	for _, e := range searchads.AllEngines() {
		cdf := r.During[e].UIDRedirectorCDF
		b.Logf("Figure 5 %-12s P(<=0)=%.2f P(<=1)=%.2f P(<=2)=%.2f",
			e, cdf.At(0), cdf.At(1), cdf.At(2))
	}
}

// BenchmarkTable4_UIDCookieRedirectors regenerates Table 4.
func BenchmarkTable4_UIDCookieRedirectors(b *testing.B) {
	_, r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0.0
		for _, e := range searchads.AllEngines() {
			for _, f := range r.During[e].UIDRedirectors {
				total += f.Fraction
			}
		}
		if total == 0 {
			b.Fatal("no UID redirectors")
		}
	}
	b.StopTimer()
	for _, e := range searchads.AllEngines() {
		for _, f := range r.During[e].UIDRedirectors {
			b.Logf("Table 4 %-12s %-40s %.0f%%", e, f.Label, f.Fraction*100)
		}
	}
}

// BenchmarkSec431_DestinationTrackers regenerates §4.3.1: filter-list
// matching over all destination-page traffic.
func BenchmarkSec431_DestinationTrackers(b *testing.B) {
	ds, r := benchSetup(b)
	engine := filterlist.DefaultEngine()
	var reqs []filterlist.RequestInfo
	for _, it := range ds.Iterations {
		for _, req := range it.DestRequests {
			reqs = append(reqs, filterlist.RequestInfo{
				URL: req.URL, Type: netsim.ResourceType(req.Type),
				FirstParty: req.FirstParty, ThirdParty: req.ThirdParty,
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matched := 0
		for _, req := range reqs {
			if engine.IsTracker(req) {
				matched++
			}
		}
		if matched == 0 {
			b.Fatal("no tracker requests on destinations")
		}
	}
	b.StopTimer()
	for _, e := range searchads.AllEngines() {
		a := r.After[e]
		b.Logf("Sec 4.3.1 %-12s pages-with-trackers=%.0f%% distinct=%d median=%.0f",
			e, a.PagesWithTrackers*100, a.DistinctTrackers, a.MedianTrackersPerPage)
	}
}

// BenchmarkTable5_DestinationTrackerEntities regenerates Table 5.
func BenchmarkTable5_DestinationTrackerEntities(b *testing.B) {
	ds, r := benchSetup(b)
	ents := searchads.DefaultEntities()
	var hosts []string
	for _, it := range ds.Iterations {
		for _, req := range it.DestRequests {
			hosts = append(hosts, req.URL)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := map[string]int{}
		for _, h := range hosts {
			counts[ents.EntityOf(hostOf(h))]++
		}
		if len(counts) == 0 {
			b.Fatal("no entities")
		}
	}
	b.StopTimer()
	for _, e := range searchads.AllEngines() {
		line := "Table 5 " + e + ":"
		for _, f := range r.After[e].TopEntities {
			line += fmt.Sprintf(" %s(%.1f%%)", f.Label, f.Fraction*100)
		}
		b.Log(line)
	}
}

func hostOf(raw string) string {
	for i := 0; i+3 <= len(raw); i++ {
		if raw[i:i+3] == "://" {
			rest := raw[i+3:]
			for j := 0; j < len(rest); j++ {
				if rest[j] == '/' || rest[j] == '?' {
					return rest[:j]
				}
			}
			return rest
		}
	}
	return raw
}

// BenchmarkTable6_UIDSmuggling regenerates Table 6 (MSCLKID / GCLID /
// other UID parameters reaching advertisers).
func BenchmarkTable6_UIDSmuggling(b *testing.B) {
	ds, r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.Analyze(&searchads.Dataset{Iterations: ds.Iterations[:60]})
	}
	b.StopTimer()
	for _, e := range searchads.AllEngines() {
		a := r.After[e]
		b.Logf("Table 6 %-12s MSCLKID=%.0f%% GCLID=%.0f%% other=%.0f%% any=%.0f%%",
			e, a.MSCLKID*100, a.GCLID*100, a.OtherUID*100, a.AnyUID*100)
	}
}

// BenchmarkSec432_ClickIDPersistence regenerates §4.3.2's persistence
// cross-reference.
func BenchmarkSec432_ClickIDPersistence(b *testing.B) {
	_, r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0.0
		for _, e := range searchads.AllEngines() {
			sum += r.After[e].PersistedMSCLKID + r.After[e].PersistedGCLID
		}
		if sum == 0 {
			b.Fatal("no persistence observed")
		}
	}
	b.StopTimer()
	for _, e := range searchads.AllEngines() {
		b.Logf("Sec 4.3.2 %-12s persisted MSCLKID=%.0f%% GCLID=%.0f%%",
			e, r.After[e].PersistedMSCLKID*100, r.After[e].PersistedGCLID*100)
	}
}

// BenchmarkTable7_TopRedirectors regenerates Table 7 (share of
// redirector occurrences per host).
func BenchmarkTable7_TopRedirectors(b *testing.B) {
	ds, r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := map[string]int{}
		for _, it := range ds.Iterations {
			for _, host := range analysis.PathOf(it).Redirectors() {
				counts[host]++
			}
		}
		if len(counts) == 0 {
			b.Fatal("no redirectors")
		}
	}
	b.StopTimer()
	for _, e := range searchads.AllEngines() {
		for _, f := range r.During[e].TopRedirectors {
			b.Logf("Table 7 %-12s %-40s %.0f%%", e, f.Label, f.Fraction*100)
		}
	}
}

// BenchmarkSec31_RecorderCoverage regenerates the §3.1 crawler-vs-
// extension coverage check (97% median).
func BenchmarkSec31_RecorderCoverage(b *testing.B) {
	ds, r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ratios []float64
		for _, it := range ds.Iterations {
			if it.ExtensionRequestCount > 0 {
				ratios = append(ratios, float64(it.CrawlerRequestCount)/float64(it.ExtensionRequestCount))
			}
		}
		if analysis.MedianFloat(ratios) < 0.9 {
			b.Fatal("coverage collapsed")
		}
	}
	b.StopTimer()
	for _, e := range searchads.AllEngines() {
		b.Logf("Sec 3.1 %-12s recorder coverage (median) = %.0f%%", e, r.RecorderCoverage[e]*100)
	}
}

// BenchmarkSec32_TokenFunnel regenerates the §3.2 token classification
// funnel (6,971 → 1,258 in the paper).
func BenchmarkSec32_TokenFunnel(b *testing.B) {
	ds, r := benchSetup(b)
	obs := analysis.Observations(ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := tokens.Classify(obs)
		if len(res.UserIDs) == 0 {
			b.Fatal("no user IDs")
		}
	}
	b.StopTimer()
	b.Logf("Sec 3.2 funnel: total=%d user-ids=%d by-reason=%v",
		r.Funnel.TotalTokens, r.Funnel.UserIDs, r.Funnel.ByReason)
}

// BenchmarkCrawl_EndToEnd measures the full pipeline: world build +
// 5-engine crawl + analysis, per iteration count.
func BenchmarkCrawl_EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		study := searchads.NewStudy(searchads.Config{Seed: int64(i + 1), QueriesPerEngine: 10})
		if _, err := study.Analyze(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_PartitionedVsFlat compares the two storage models'
// navigational-tracking outcomes (DESIGN.md §4.2): the numbers must
// match, demonstrating that partitioning does not stop bounce tracking.
func BenchmarkAblation_PartitionedVsFlat(b *testing.B) {
	b.ResetTimer()
	var flatNav, partNav float64
	for i := 0; i < b.N; i++ {
		flat, err := searchads.NewStudy(searchads.Config{
			Seed: 5, Engines: []string{searchads.StartPage}, QueriesPerEngine: 15,
		}).Analyze(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		part, err := searchads.NewStudy(searchads.Config{
			Seed: 5, Engines: []string{searchads.StartPage}, QueriesPerEngine: 15,
			Storage: searchads.PartitionedStorage,
		}).Analyze(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		flatNav = flat.During["startpage"].NavTrackingFraction
		partNav = part.During["startpage"].NavTrackingFraction
		if flatNav != partNav {
			b.Fatalf("partitioning changed navigational tracking: %.2f vs %.2f", flatNav, partNav)
		}
	}
	b.StopTimer()
	b.Logf("Ablation: nav tracking flat=%.0f%% partitioned=%.0f%% (unchanged, as §2.2.2 argues)",
		flatNav*100, partNav*100)
}

// BenchmarkAblation_FilterEngine compares full ABP rule semantics
// against a naive domain-set matcher (DESIGN.md §4.3): generic path
// rules catch the long-tail trackers a domain set misses.
func BenchmarkAblation_FilterEngine(b *testing.B) {
	ds, _ := benchSetup(b)
	full := filterlist.DefaultEngine()
	domainOnly := filterlist.NewEngine()
	// Domain-set baseline: only the ||domain^ rules, no generic ones.
	domainOnly.AddList("domains", domainRulesOnly())
	var reqs []filterlist.RequestInfo
	for _, it := range ds.Iterations {
		for _, req := range it.DestRequests {
			reqs = append(reqs, filterlist.RequestInfo{
				URL: req.URL, Type: netsim.ResourceType(req.Type),
				FirstParty: req.FirstParty, ThirdParty: req.ThirdParty,
			})
		}
	}
	var fullN, domN int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fullN, domN = 0, 0
		for _, req := range reqs {
			if full.IsTracker(req) {
				fullN++
			}
			if domainOnly.IsTracker(req) {
				domN++
			}
		}
	}
	b.StopTimer()
	if fullN <= domN {
		b.Fatalf("generic rules added nothing: full=%d domain-only=%d", fullN, domN)
	}
	b.Logf("Ablation: full rules matched %d requests, domain-set baseline %d (+%d from generic rules)",
		fullN, domN, fullN-domN)
}

func domainRulesOnly() string {
	return `||google-analytics.com^
||googletagmanager.com^
||doubleclick.net^
||googlesyndication.com^
||clarity.ms^
||bat.bing.com^
||facebook.net^
||amazon-adsystem.com^
||criteo.com^
||criteo.net^
`
}

// BenchmarkAblation_StealthVsHeadless quantifies the stealth plugin's
// necessity (§3.1): with the naive headless fingerprint the engines
// detect the bot and serve no ads, so the study collapses.
func BenchmarkAblation_StealthVsHeadless(b *testing.B) {
	var stealthAds, headlessAds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stealth, err := searchads.NewStudy(searchads.Config{
			Seed: 6, Engines: []string{searchads.Bing}, QueriesPerEngine: 8,
		}).Crawl(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		headless, err := searchads.NewStudy(searchads.Config{
			Seed: 6, Engines: []string{searchads.Bing}, QueriesPerEngine: 8,
			NoStealth: true,
		}).Crawl(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		stealthAds, headlessAds = 0, 0
		for _, it := range stealth.Iterations {
			stealthAds += len(it.DisplayedAds)
		}
		for _, it := range headless.Iterations {
			headlessAds += len(it.DisplayedAds)
		}
		if headlessAds != 0 || stealthAds == 0 {
			b.Fatalf("bot detection inverted: stealth=%d headless=%d", stealthAds, headlessAds)
		}
	}
	b.StopTimer()
	b.Logf("Ablation: ads shown with stealth=%d, with naive headless fingerprint=%d", stealthAds, headlessAds)
}

// BenchmarkAblation_ReferrerSmuggling measures the §5-extension channel:
// with the referrer-smuggling service enabled, a fraction of clicks pass
// identifiers through document.referrer, invisible to query-parameter
// detection alone.
func BenchmarkAblation_ReferrerSmuggling(b *testing.B) {
	var rate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := searchads.NewStudy(searchads.Config{
			Seed: 9, Engines: []string{searchads.DuckDuckGo}, QueriesPerEngine: 55,
			ReferrerSmuggling: true,
		}).Analyze(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		rate = report.After["duckduckgo"].ReferrerUID
		if rate == 0 {
			b.Fatal("referrer smuggling never observed")
		}
	}
	b.StopTimer()
	b.Logf("Ablation: referrer-UID rate with smuggling service enabled = %.0f%%", rate*100)
}

// BenchmarkStudyCrawl is the end-to-end crawl benchmark the PR-2 crawl
// overhaul is measured by: build a 5-engine world of 40 queries each and
// run the full 200-iteration sequential crawl (SERP, ad click, redirect
// chase, dwell, next-day revisit). CI emits its ns/op and allocs/op into
// BENCH_crawl.json alongside the filter-engine trajectory.
func BenchmarkStudyCrawl(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := websim.NewWorld(websim.Config{Seed: 1009, QueriesPerEngine: 40})
		ds, err := crawler.New(crawler.Config{World: w}).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(ds.Iterations) != 200 {
			b.Fatalf("iterations = %d", len(ds.Iterations))
		}
	}
}

// BenchmarkStudyCrawlParallel is the same workload on the iteration
// worker pool; its dataset is asserted byte-identical to sequential in
// the crawler tests, so this measures pure scheduling win.
func BenchmarkStudyCrawlParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := websim.NewWorld(websim.Config{Seed: 1009, QueriesPerEngine: 40})
		ds, err := crawler.New(crawler.Config{World: w, Parallel: true}).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(ds.Iterations) != 200 {
			b.Fatalf("iterations = %d", len(ds.Iterations))
		}
	}
}

// BenchmarkStudyCrawlFaults is BenchmarkStudyCrawl with the chaos
// layer in the loop: the same 5-engine, 200-iteration world crawled
// under a bot-hostile fault plan. rate=0 exercises the disarmed path —
// the plan resolves to zero and injection must cost nothing, which CI
// gates at <3% ns/op over BenchmarkStudyCrawl — and rate=0.05 measures
// a degraded crawl with retries and typed failures. CI emits both into
// BENCH_chaos.json.
func BenchmarkStudyCrawlFaults(b *testing.B) {
	for _, rate := range []float64{0, 0.05} {
		b.Run(fmt.Sprintf("rate=%g", rate), func(b *testing.B) {
			rates, err := netsim.ProfileRates(netsim.ProfileBotHostile, rate)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := websim.NewWorld(websim.Config{
					Seed:             1009,
					QueriesPerEngine: 40,
					Faults:           netsim.FaultPlan{Rates: rates},
				})
				ds, err := crawler.New(crawler.Config{World: w}).Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if len(ds.Iterations) != 200 {
					b.Fatalf("iterations = %d", len(ds.Iterations))
				}
			}
		})
	}
}

// BenchmarkStudyCrawlCheckpoint is BenchmarkStudyCrawl through the
// facade with crash-safe checkpointing in the loop. off runs the same
// 5-engine, 200-iteration study with checkpointing disabled — CI gates
// it at <3% ns/op over BenchmarkStudyCrawl, pinning that the resume
// plumbing costs nothing when off. on checkpoints to a temp file at the
// default interval (periodic atomic write + fsync, final removal) and
// is recorded informationally in BENCH_checkpoint.json as the price of
// crash safety.
func BenchmarkStudyCrawlCheckpoint(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			dir := b.TempDir()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := searchads.Config{Seed: 1009, QueriesPerEngine: 40}
				if mode == "on" {
					cfg.Checkpoint = filepath.Join(dir, "bench.ckpt")
				}
				ds, err := searchads.NewStudy(cfg).Crawl(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if len(ds.Iterations) != 200 {
					b.Fatalf("iterations = %d", len(ds.Iterations))
				}
			}
		})
	}
}

// BenchmarkStudyCrawlTelemetry is BenchmarkStudyCrawl through the
// facade with the telemetry registry in the loop. off runs the same
// 5-engine, 200-iteration study with Telemetry nil — CI gates it at
// <3% ns/op over BenchmarkStudyCrawl, pinning that an uninstrumented
// run pays only nil checks. on records every stage into a live
// registry (no event sink) and is recorded informationally in
// BENCH_telemetry.json as the price of observability.
func BenchmarkStudyCrawlTelemetry(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := searchads.Config{Seed: 1009, QueriesPerEngine: 40}
				if mode == "on" {
					cfg.Telemetry = searchads.NewTelemetry()
				}
				ds, err := searchads.NewStudy(cfg).Crawl(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if len(ds.Iterations) != 200 {
					b.Fatalf("iterations = %d", len(ds.Iterations))
				}
			}
		})
	}
}

// BenchmarkStudyCrawlAdversary is BenchmarkStudyCrawl through the
// facade with the arms race in the loop. off names the adversary
// posture and countermeasure bundle but leaves both disarmed — CI
// gates it at <3% ns/op over BenchmarkStudyCrawl, pinning that the
// suspicion ledger, outcome accounting, and breaker plumbing cost
// nothing when off. on runs the strict posture against the full
// countermeasure bundle (pacing, rotation, solving, breaker) and is
// recorded informationally in BENCH_armsrace.json as the price of the
// arms race.
func BenchmarkStudyCrawlAdversary(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := searchads.Config{Seed: 1009, QueriesPerEngine: 40,
					Adversary: "off", Countermeasures: "off"}
				if mode == "on" {
					cfg.Adversary = "strict"
					cfg.Countermeasures = "full"
				}
				ds, err := searchads.NewStudy(cfg).Crawl(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if len(ds.Iterations) != 200 {
					b.Fatalf("iterations = %d", len(ds.Iterations))
				}
			}
		})
	}
}

// BenchmarkSweep measures the sweep engine on a small matrix: 4 seeds
// × 2 storage modes (8 cells) of a 2-engine, 8-query study, crawled,
// analyzed, and aggregated with streaming dataset discard. CI emits
// its ns/op and allocs/op into BENCH_sweep.json alongside the filter
// and crawl trajectories.
func BenchmarkSweep(b *testing.B) {
	b.ReportAllocs()
	matrix := searchads.SweepMatrix{
		Seeds:            []int64{1, 2, 3, 4},
		Storage:          []searchads.StorageMode{searchads.FlatStorage, searchads.PartitionedStorage},
		EngineSets:       [][]string{{searchads.Bing, searchads.DuckDuckGo}},
		QueriesPerEngine: 8,
	}
	filter := searchads.DefaultFilterEngine()
	for i := 0; i < b.N; i++ {
		res, err := searchads.Sweep(context.Background(), matrix, searchads.SweepOptions{Filter: filter})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) != 8 || len(res.Scenarios) != 2 {
			b.Fatalf("cells=%d scenarios=%d", len(res.Cells), len(res.Scenarios))
		}
		if res.PeakRetainedIterations > res.Parallelism {
			b.Fatalf("peak retained iterations %d exceeds parallelism %d",
				res.PeakRetainedIterations, res.Parallelism)
		}
	}
}

// BenchmarkAccumulator measures the incremental-analysis path the v2
// streaming API folds crawls through: every iteration of the shared
// bench crawl added one at a time, then the report materialised. This
// is the whole §4 analysis as the sweep engine and Study.Analyze now
// run it; CI emits its ns/op and allocs/op into BENCH_accumulator.json
// alongside the filter, crawl, and sweep trajectories.
func BenchmarkAccumulator(b *testing.B) {
	ds, _ := benchSetup(b)
	filter := searchads.DefaultFilterEngine()
	ents := searchads.DefaultEntities()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := searchads.NewAccumulator(searchads.AnalysisOptions{Filter: filter, Entities: ents})
		for _, it := range ds.Iterations {
			acc.Add(it)
		}
		if acc.Report().Funnel.TotalTokens == 0 {
			b.Fatal("empty funnel")
		}
	}
}

// BenchmarkAccumulatorMerge measures the sharded analysis fold: the
// bench dataset partitioned into contiguous shards folded on their own
// goroutines and combined with Accumulator.Merge — the path Parallel
// studies and sweep cells with AnalysisShards take. shards=1 is the
// sequential fold (merge-free reference); higher shard counts show the
// multi-core scaling headroom (flat on a single-core container, where
// the numbers bound the sharding overhead instead). Reports are
// byte-identical across shard counts by construction (test-asserted),
// so this measures pure scheduling + merge cost. CI emits ns/op and
// allocs/op into BENCH_accumulator_merge.json.
func BenchmarkAccumulatorMerge(b *testing.B) {
	ds, _ := benchSetup(b)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := searchads.AnalyzeDatasetSharded(context.Background(), ds, shards)
				if err != nil {
					b.Fatal(err)
				}
				if r.Funnel.TotalTokens == 0 {
					b.Fatal("empty funnel")
				}
			}
		})
	}
}

// BenchmarkWorldBuild measures world construction alone (all engines,
// pools, trackers, redirectors).
func BenchmarkWorldBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := websim.NewWorld(websim.Config{Seed: int64(i + 1), QueriesPerEngine: 100})
		if w.Sites.Sites() == 0 {
			b.Fatal("empty world")
		}
	}
}

// BenchmarkParallelCrawl contrasts sequential and parallel crawling of
// all five engines.
func BenchmarkParallelCrawl(b *testing.B) {
	for _, parallel := range []bool{false, true} {
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := websim.NewWorld(websim.Config{Seed: 9, QueriesPerEngine: 10})
				ds, err := crawler.New(crawler.Config{World: w, Parallel: parallel}).Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if len(ds.Iterations) != 50 {
					b.Fatalf("iterations = %d", len(ds.Iterations))
				}
			}
		})
	}
}

// filterCorpus collects every recorded request of the shared bench crawl
// into filter-engine inputs: SERP, click, and destination traffic alike.
func filterCorpus(ds *searchads.Dataset) []filterlist.RequestInfo {
	var reqs []filterlist.RequestInfo
	for _, it := range ds.Iterations {
		for _, stage := range [][]crawler.RequestRecord{it.SERPRequests, it.ClickRequests, it.DestRequests} {
			reqs = append(reqs, crawler.RequestInfos(stage)...)
		}
	}
	return reqs
}

// BenchmarkEngineMatch measures the request hot path: the embedded
// EasyList+EasyPrivacy lists matched against every recorded request of
// the bench crawl. ns/op and allocs/op are per request.
func BenchmarkEngineMatch(b *testing.B) {
	ds, _ := benchSetup(b)
	engine := filterlist.DefaultEngine()
	reqs := filterCorpus(ds)
	if len(reqs) == 0 {
		b.Fatal("empty request corpus")
	}
	engine.IsTracker(reqs[0]) // build the token index outside the timer
	b.ResetTimer()
	matched := 0
	for i := 0; i < b.N; i++ {
		if engine.IsTracker(reqs[i%len(reqs)]) {
			matched++
		}
	}
	b.StopTimer()
	b.Logf("corpus=%d requests, matched=%d over %d iterations", len(reqs), matched, b.N)
}

// BenchmarkEngineMatch_RegexOracle measures the seed implementation's
// strategy — a linear scan of per-rule compiled regexes — over the same
// corpus, kept as the standing reference the token index is judged
// against (acceptance: >= 10x fewer ns/op).
func BenchmarkEngineMatch_RegexOracle(b *testing.B) {
	ds, _ := benchSetup(b)
	engine := filterlist.DefaultEngine()
	rules := engine.Rules()
	reqs := filterCorpus(ds)
	if len(reqs) == 0 {
		b.Fatal("empty request corpus")
	}
	oracleScan := func(req filterlist.RequestInfo) bool {
		matched := false
		for _, r := range rules {
			if !r.Exception && r.MatchesOracle(req) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
		for _, r := range rules {
			if r.Exception && r.MatchesOracle(req) {
				return false
			}
		}
		return true
	}
	for _, req := range reqs[:min(len(reqs), 2000)] {
		oracleScan(req) // prime the lazily-compiled oracle regexes
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracleScan(reqs[i%len(reqs)])
	}
}

// BenchmarkEngineMatchBatch measures the amortized batch API over the
// whole corpus; the custom metric is the per-request cost.
func BenchmarkEngineMatchBatch(b *testing.B) {
	ds, _ := benchSetup(b)
	engine := filterlist.DefaultEngine()
	reqs := filterCorpus(ds)
	if len(reqs) == 0 {
		b.Fatal("empty request corpus")
	}
	engine.IsTracker(reqs[0]) // build the token index outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(engine.MatchBatch(reqs)) != len(reqs) {
			b.Fatal("verdict count mismatch")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(reqs)), "ns/req")
}

// BenchmarkFilterEngine_PaperScale measures matching against a list the
// size of the paper's combined EasyList+EasyPrivacy (86,488 rules).
func BenchmarkFilterEngine_PaperScale(b *testing.B) {
	engine := filterlist.NewEngine()
	engine.AddList("synthetic", filterlist.GenerateSyntheticList(86488))
	reqs := []filterlist.RequestInfo{
		{URL: "https://tracker-40001.example/px?x=1", Type: netsim.TypeImage, FirstParty: "a.example", ThirdParty: true},
		{URL: "https://clean.example/app.js", Type: netsim.TypeScript, FirstParty: "clean.example"},
		{URL: "https://sub.tracker-12345.example/unit.js", Type: netsim.TypeScript, FirstParty: "a.example", ThirdParty: true},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, req := range reqs {
			engine.IsTracker(req)
		}
	}
}

// BenchmarkBrowser_ClickNavigation measures one ad click's full redirect
// chase through the virtual network.
func BenchmarkBrowser_ClickNavigation(b *testing.B) {
	world := websim.NewWorld(websim.Config{Seed: 31, QueriesPerEngine: 5})
	c := crawler.New(crawler.Config{World: world, Engines: []string{searchads.StartPage}, Iterations: 1, SkipRevisit: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := c.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if ds.Iterations[0].Error != "" {
			b.Fatal(ds.Iterations[0].Error)
		}
	}
}
