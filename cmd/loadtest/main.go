// Command loadtest drives the library under sustained load and reports
// where the time goes: per-stage latency percentiles (p50/p90/p95/p99/
// max, wall and virtual clock), run counters, per-engine throughput,
// and a second-by-second throughput curve — the observability harness
// of ROADMAP item 5, built on Config.Telemetry.
//
// It runs whole studies (crawl + incremental §4 analysis) against a
// named preset, -concurrency at a time, each on its own seed, until
// -runs studies complete or -duration elapses. Every layer reports
// into one telemetry registry; the final snapshot is the report.
//
// Usage:
//
//	loadtest -preset baseline -concurrency 4 -runs 8
//	loadtest -preset chaos -duration 30s
//	loadtest -preset arms-race -runs 4
//	loadtest -preset checkpoint -runs 4 -events trace.jsonl
//	loadtest -quick          # small fixed workload (the CI shape)
//
// The human-readable report goes to stderr; the machine-readable JSON
// result is written to -out (default BENCH_loadtest.json). With
// -events, a JSONL run-event trace (iteration start/finish, retry,
// fault, checkpoint, cell done) streams to the given file while the
// run is live.
//
// Exit status: 0 on success, 1 if any study failed, 2 on a usage
// error, 3 if the run succeeded but the -events trace could not be
// written or flushed — distinct, so callers never mistake a lost
// trace for a lost run (and vice versa). Ctrl-C cancels in-flight
// studies and exits 130.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"searchads"
)

var (
	preset      = flag.String("preset", "baseline", "workload preset: baseline, parallel, chaos, arms-race, checkpoint")
	concurrency = flag.Int("concurrency", 0, "studies in flight at once (0 = GOMAXPROCS, capped at 4)")
	runs        = flag.Int("runs", 0, "total studies to run (0 = 2×concurrency; ignored with -duration)")
	duration    = flag.Duration("duration", 0, "keep launching studies until this much wall time has passed (0 = use -runs)")
	queries     = flag.Int("queries", 25, "queries per engine per study")
	seedBase    = flag.Int64("seed-base", 1, "first study seed; run i uses seed-base+i")
	events      = flag.String("events", "", "stream a JSONL run-event trace to this file while the run is live")
	out         = flag.String("out", "BENCH_loadtest.json", "write the JSON result to this file ('' = skip, '-' = stdout)")
	quick       = flag.Bool("quick", false, "small fixed workload: baseline preset, 2 runs, 8 queries (explicit flags still win)")
	markdown    = flag.Bool("markdown", false, "render the report as Markdown instead of plain text")
	quiet       = flag.Bool("quiet", false, "suppress the stderr report")
)

// Exit codes. A sink failure is deliberately distinct from a study
// failure: the study's numbers are good even when the trace is not,
// and vice versa.
const (
	exitOK          = 0
	exitStudyFailed = 1
	exitUsage       = 2
	exitSinkFailed  = 3
)

func main() {
	flag.Parse()
	os.Exit(run())
}

// presetConfig builds one study's Config for a workload preset.
func presetConfig(name string, seed int64, queries int) (searchads.Config, error) {
	cfg := searchads.Config{Seed: seed, QueriesPerEngine: queries}
	switch name {
	case "baseline":
		// Sequential crawl over two engines: the smallest honest
		// end-to-end study, the CI -quick shape.
		cfg.Engines = []string{"google", "bing"}
	case "parallel":
		// All five engines on the worker pool — the throughput shape.
		cfg.Parallel = true
	case "chaos":
		// Bot-hostile faults at 10%: retries, backoff waits, and error
		// classes show up in the telemetry.
		cfg.Engines = []string{"google", "bing", "duckduckgo"}
		cfg.FaultProfile = "bot-hostile"
		cfg.FaultRate = 0.1
	case "arms-race":
		// Strict adversary vs the full countermeasure bundle on top of
		// bot-hostile faults: recovered/lost/abandoned iteration outcomes,
		// session rotations, captcha solves, and breaker trips/sheds all
		// show up in the telemetry counters table.
		cfg.Engines = []string{"google", "bing", "duckduckgo"}
		cfg.FaultProfile = "bot-hostile"
		cfg.FaultRate = 0.05
		cfg.Adversary = "strict"
		cfg.Countermeasures = "full"
	case "checkpoint":
		// Tight checkpoint interval: exercises write/fsync latency.
		cfg.Engines = []string{"google", "bing"}
		cfg.Checkpoint = filepath.Join(os.TempDir(),
			fmt.Sprintf("loadtest-ckpt-%d-%d.sack", os.Getpid(), seed))
		cfg.CheckpointEvery = 5
	default:
		return cfg, fmt.Errorf("unknown preset %q (have: baseline, parallel, chaos, arms-race, checkpoint)", name)
	}
	return cfg, nil
}

// curvePoint is one throughput sample: cumulative iterations at t, and
// the rate over the interval ending at t.
type curvePoint struct {
	T          time.Duration `json:"t_ns"`
	Iterations uint64        `json:"iterations"`
	Rate       float64       `json:"iterations_per_sec"`
}

// benchResult is the BENCH_loadtest.json payload: the workload shape,
// the final telemetry snapshot, and the throughput curve.
type benchResult struct {
	Preset      string                      `json:"preset"`
	Concurrency int                         `json:"concurrency"`
	Runs        int                         `json:"runs"`
	Queries     int                         `json:"queries_per_engine"`
	StudyErrors int                         `json:"study_errors,omitempty"`
	Telemetry   searchads.TelemetrySnapshot `json:"telemetry"`
	Curve       []curvePoint                `json:"curve,omitempty"`
}

func run() int {
	if *quick {
		// -quick pins the CI workload; explicitly passed flags still win.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["preset"] {
			*preset = "baseline"
		}
		if !set["concurrency"] {
			*concurrency = 2
		}
		if !set["runs"] {
			*runs = 2
		}
		if !set["queries"] {
			*queries = 8
		}
	}
	workers := *concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 4 {
			workers = 4
		}
	}
	total := *runs
	if total <= 0 {
		total = 2 * workers
	}
	if _, err := presetConfig(*preset, 0, 1); err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		return exitUsage
	}
	if *queries <= 0 {
		fmt.Fprintln(os.Stderr, "loadtest: -queries must be positive")
		return exitUsage
	}

	tele := searchads.NewTelemetry()
	var eventsFile *os.File
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadtest:", err)
			return exitUsage
		}
		eventsFile = f
		tele.SetSink(bufio.NewWriter(f))
	}
	// closeSink flushes and closes the trace; non-zero means the trace
	// is incomplete even though the run itself may be fine.
	closeSink := func() int {
		err := tele.CloseSink()
		if eventsFile != nil {
			if closeErr := eventsFile.Close(); err == nil {
				err = closeErr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadtest: event trace:", err)
			return exitSinkFailed
		}
		return exitOK
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The sampler records the throughput curve while studies run.
	sampleEvery := time.Second
	if *duration > 0 && *duration/10 < sampleEvery {
		sampleEvery = *duration / 10
	}
	if sampleEvery < 100*time.Millisecond {
		sampleEvery = 100 * time.Millisecond
	}
	var (
		curveMu sync.Mutex
		curve   []curvePoint
	)
	samplerDone := make(chan struct{})
	samplerStop := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(sampleEvery)
		defer tick.Stop()
		var prevN uint64
		var prevT time.Duration
		for {
			select {
			case <-samplerStop:
				return
			case <-tick.C:
				snap := tele.Snapshot()
				n := snap.Counter("iterations")
				dt := snap.Elapsed - prevT
				var rate float64
				if dt > 0 {
					rate = float64(n-prevN) / dt.Seconds()
				}
				curveMu.Lock()
				curve = append(curve, curvePoint{T: snap.Elapsed, Iterations: n, Rate: rate})
				curveMu.Unlock()
				prevN, prevT = n, snap.Elapsed
			}
		}
	}()

	// Dispatch studies: seeds seed-base, seed-base+1, ... either a fixed
	// count or until the deadline passes (in-flight studies finish).
	var (
		mu        sync.Mutex
		studyErrs []error
		completed int
	)
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
		total = -1 // unbounded; the deadline is the stop condition
	}
	seeds := make(chan int64)
	go func() {
		defer close(seeds)
		for i := 0; ; i++ {
			if total >= 0 && i >= total {
				return
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				return
			}
			select {
			case seeds <- *seedBase + int64(i):
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				cfg, _ := presetConfig(*preset, seed, *queries)
				cfg.Telemetry = tele
				study := searchads.NewStudy(cfg)
				_, err := study.Analyze(ctx)
				if cfg.Checkpoint != "" {
					os.Remove(cfg.Checkpoint)
				}
				mu.Lock()
				completed++
				if err != nil {
					studyErrs = append(studyErrs, fmt.Errorf("seed %d: %w", seed, err))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(samplerStop)
	<-samplerDone

	snap := tele.Snapshot()
	mu.Lock()
	nErrs := len(studyErrs)
	errs := errors.Join(studyErrs...)
	ran := completed
	mu.Unlock()

	if !*quiet {
		fmt.Fprintf(os.Stderr, "loadtest: preset=%s concurrency=%d studies=%d queries=%d\n\n",
			*preset, workers, ran, *queries)
		if *markdown {
			fmt.Fprint(os.Stderr, snap.Markdown())
		} else {
			fmt.Fprint(os.Stderr, snap.Text())
		}
		curveMu.Lock()
		if len(curve) > 0 {
			fmt.Fprintf(os.Stderr, "\nthroughput curve (per %s interval):\n", sampleEvery)
			for _, p := range curve {
				fmt.Fprintf(os.Stderr, "  t=%-8s %8.1f iter/sec  (%d total)\n",
					p.T.Truncate(10*time.Millisecond), p.Rate, p.Iterations)
			}
		}
		curveMu.Unlock()
	}

	if *out != "" {
		curveMu.Lock()
		res := benchResult{
			Preset:      *preset,
			Concurrency: workers,
			Runs:        ran,
			Queries:     *queries,
			StudyErrors: nErrs,
			Telemetry:   snap,
			Curve:       curve,
		}
		curveMu.Unlock()
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadtest:", err)
			closeSink()
			return exitStudyFailed
		}
		data = append(data, '\n')
		if *out == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadtest:", err)
			closeSink()
			return exitStudyFailed
		}
	}

	sinkCode := closeSink()
	if errs != nil {
		if errors.Is(errs, searchads.ErrCanceled) {
			fmt.Fprintf(os.Stderr, "loadtest: canceled with %d stud%s failed\n", nErrs, plural(nErrs, "y", "ies"))
			return 130
		}
		fmt.Fprintf(os.Stderr, "loadtest: %d stud%s failed:\n%s\n", nErrs, plural(nErrs, "y", "ies"), indent(errs.Error()))
		return exitStudyFailed
	}
	if sinkCode != exitOK {
		return sinkCode
	}
	return exitOK
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
