// Command report analyses a crawl dataset (or runs a fresh in-memory
// study) and prints every table and figure of the paper's evaluation.
//
// Usage:
//
//	report -in dataset.json            # analyse a saved dataset
//	report -seed 1 -queries 100        # run a fresh study end to end
//	report -in dataset.json -experiments > EXPERIMENTS.md
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"searchads"
	"searchads/internal/analysis"
)

func main() {
	var (
		in          = flag.String("in", "", "dataset JSON to analyse (empty = run a fresh study)")
		seed        = flag.Int64("seed", 20221001, "world seed for a fresh study")
		queries     = flag.Int("queries", 500, "queries per engine for a fresh study")
		engines     = flag.String("engines", "", "comma-separated engines for a fresh study")
		experiments = flag.Bool("experiments", false, "emit EXPERIMENTS.md (paper vs measured) instead of the report")
		asJSON      = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	var report *searchads.Report
	if *in != "" {
		ds, err := searchads.LoadDataset(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		report = searchads.AnalyzeDataset(ds)
	} else {
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		cfg := searchads.Config{Seed: *seed, QueriesPerEngine: *queries}
		if *engines != "" {
			cfg.Engines = strings.Split(*engines, ",")
		}
		var err error
		// Analyze folds the live crawl incrementally; no dataset is
		// materialised for a fresh-study report.
		report, err = searchads.NewStudy(cfg).Analyze(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			if errors.Is(err, searchads.ErrCanceled) {
				os.Exit(130)
			}
			os.Exit(1)
		}
	}

	if *experiments {
		fmt.Print(analysis.RenderExperiments(report.Compare()))
		return
	}
	if *asJSON {
		data, err := report.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		fmt.Println()
		return
	}
	fmt.Print(report.Render())
}
