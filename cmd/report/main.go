// Command report analyses a crawl dataset (or runs a fresh in-memory
// study) and prints every table and figure of the paper's evaluation.
//
// Usage:
//
//	report -in dataset.json            # analyse a saved dataset
//	report -seed 1 -queries 100        # run a fresh study end to end
//	report -in dataset.json -shards 8  # sharded fold across 8 cores
//	report -in dataset.json -experiments > EXPERIMENTS.md
//	report -seed 1 -cpuprofile cpu.pprof -memprofile mem.pprof
//	report -in dataset.json -shards 8 -blockprofile block.pprof -mutexprofile mutex.pprof
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"searchads"
	"searchads/internal/analysis"
	"searchads/internal/profiling"
)

var (
	in           = flag.String("in", "", "dataset JSON to analyse (empty = run a fresh study)")
	seed         = flag.Int64("seed", 20221001, "world seed for a fresh study")
	queries      = flag.Int("queries", 500, "queries per engine for a fresh study")
	engines      = flag.String("engines", "", "comma-separated engines for a fresh study")
	shards       = flag.Int("shards", 0, "analysis shards for -in datasets (0/1 = sequential fold; reports are byte-identical either way)")
	experiments  = flag.Bool("experiments", false, "emit EXPERIMENTS.md (paper vs measured) instead of the report")
	asJSON       = flag.Bool("json", false, "emit the report as JSON")
	cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	blockprofile = flag.String("blockprofile", "", "write a pprof blocking profile at exit to this file")
	mutexprofile = flag.String("mutexprofile", "", "write a pprof mutex-contention profile at exit to this file")
)

func main() {
	flag.Parse()
	os.Exit(run())
}

func run() int {
	stopProfiles, err := profiling.Start(profiling.Options{
		CPU: *cpuprofile, Mem: *memprofile, Block: *blockprofile, Mutex: *mutexprofile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 1
	}
	defer stopProfiles()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var report *searchads.Report
	if *in != "" {
		ds, err := searchads.LoadDataset(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			return 1
		}
		if report, err = searchads.AnalyzeDatasetSharded(ctx, ds, *shards); err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			if errors.Is(err, searchads.ErrCanceled) {
				return 130
			}
			return 1
		}
	} else {
		cfg := searchads.Config{Seed: *seed, QueriesPerEngine: *queries}
		if *engines != "" {
			cfg.Engines = strings.Split(*engines, ",")
		}
		var err error
		// Analyze folds the live crawl incrementally; no dataset is
		// materialised for a fresh-study report.
		report, err = searchads.NewStudy(cfg).Analyze(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			if errors.Is(err, searchads.ErrCanceled) {
				return 130
			}
			return 1
		}
	}

	if *experiments {
		fmt.Print(analysis.RenderExperiments(report.Compare()))
		return 0
	}
	if *asJSON {
		data, err := report.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			return 1
		}
		os.Stdout.Write(data)
		fmt.Println()
		return 0
	}
	fmt.Print(report.Render())
	return 0
}
