// Command crawl runs the paper's measurement pipeline over the simulated
// web and writes the dataset as JSON.
//
// Usage:
//
//	crawl -out dataset.json [-seed 1] [-engines bing,google] [-queries 500]
//	      [-iterations 0] [-partitioned] [-no-stealth] [-skip-revisit]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"searchads"
)

func main() {
	var (
		out         = flag.String("out", "dataset.json", "output dataset path")
		seed        = flag.Int64("seed", 20221001, "world seed")
		engines     = flag.String("engines", "", "comma-separated engines (default: all five)")
		queries     = flag.Int("queries", 500, "queries per engine")
		iterations  = flag.Int("iterations", 0, "iteration cap per engine (0 = one per query)")
		partitioned = flag.Bool("partitioned", false, "crawl with partitioned cookie storage")
		noStealth   = flag.Bool("no-stealth", false, "disable the stealth fingerprint (bots get no ads)")
		skipRevisit = flag.Bool("skip-revisit", false, "skip the next-day profile revisit")
		parallel    = flag.Bool("parallel", false, "crawl iterations on a worker pool (byte-identical to sequential)")
		refSmuggle  = flag.Bool("referrer-smuggling", false, "enable the referrer-based UID-smuggling service")
		quiet       = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()

	cfg := searchads.Config{
		Seed:              *seed,
		QueriesPerEngine:  *queries,
		Iterations:        *iterations,
		NoStealth:         *noStealth,
		SkipRevisit:       *skipRevisit,
		Parallel:          *parallel,
		ReferrerSmuggling: *refSmuggle,
	}
	if *engines != "" {
		cfg.Engines = strings.Split(*engines, ",")
	}
	if *partitioned {
		cfg.Storage = searchads.PartitionedStorage
	}

	study := searchads.NewStudy(cfg)
	if !*quiet {
		fmt.Fprintln(os.Stderr, "building world and crawling...")
	}
	ds, err := study.Crawl()
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
	if err := ds.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
	if !*quiet {
		errs := 0
		for _, it := range ds.Iterations {
			if it.Error != "" {
				errs++
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d iterations (%d errors) across %d engines\n",
			*out, len(ds.Iterations), errs, len(ds.Engines()))
	}
}
