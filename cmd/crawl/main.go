// Command crawl runs the paper's measurement pipeline over the simulated
// web and writes the dataset as JSON. It consumes the v2 iteration
// stream, so Ctrl-C (SIGINT/SIGTERM) cancels the crawl within one
// iteration, writes the partial dataset crawled so far, and exits
// non-zero.
//
// Usage:
//
//	crawl -out dataset.json [-seed 1] [-engines bing,google] [-queries 500]
//	      [-iterations 0] [-partitioned] [-no-stealth] [-skip-revisit]
//	      [-faults off|flaky-edge|bot-hostile|brownout] [-fault-rate 0.05]
//	      [-adversary off|lenient|strict|paranoid] [-countermeasures off|pace|rotate|solve|full]
//	      [-checkpoint run.ckpt [-resume]]
//	      [-telemetry] [-events trace.jsonl]
//	      [-cpuprofile cpu.pprof] [-blockprofile block.pprof]
//
// Injected faults degrade iterations, never the process: fault-failed
// iterations are recorded (with typed error classes) and counted in the
// summary, and the exit status stays zero unless a non-fault error —
// bad config, cancellation, an unwritable output — occurs.
//
// With -checkpoint, the crawl periodically writes a crash-safe progress
// file; SIGINT writes a final checkpoint before exiting 130 and prints
// the exact -resume invocation. Re-running with -resume continues from
// the checkpoint and produces a dataset byte-identical to an
// uninterrupted crawl. A damaged checkpoint is discarded with a warning
// and the crawl restarts from scratch; a checkpoint from a different
// configuration is a hard error.
//
// -telemetry prints the per-stage latency table to stderr after the
// crawl; -events streams a JSONL run-event trace while it is live.
// Exit status: 0 on success, 1 on error, 130 on cancellation, and 3
// when the crawl succeeded but the -events trace could not be written
// or flushed — distinct, so callers never mistake a lost trace for a
// lost crawl. Neither flag changes a single output byte.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"searchads"
	"searchads/internal/profiling"
)

var (
	out          = flag.String("out", "dataset.json", "output dataset path")
	seed         = flag.Int64("seed", 20221001, "world seed")
	engines      = flag.String("engines", "", "comma-separated engines (default: all five)")
	queries      = flag.Int("queries", 500, "queries per engine")
	iterations   = flag.Int("iterations", 0, "iteration cap per engine (0 = one per query)")
	partitioned  = flag.Bool("partitioned", false, "crawl with partitioned cookie storage")
	noStealth    = flag.Bool("no-stealth", false, "disable the stealth fingerprint (bots get no ads)")
	skipRevisit  = flag.Bool("skip-revisit", false, "skip the next-day profile revisit")
	parallel     = flag.Bool("parallel", false, "crawl iterations on a worker pool (byte-identical to sequential)")
	refSmuggle   = flag.Bool("referrer-smuggling", false, "enable the referrer-based UID-smuggling service")
	faults       = flag.String("faults", "off", "fault-injection profile: "+strings.Join(searchads.FaultProfiles(), ", "))
	faultRate    = flag.Float64("fault-rate", 0, "overall per-request fault-injection rate in [0, 1]")
	adversary    = flag.String("adversary", "off", "stateful adversary posture: "+strings.Join(searchads.AdversaryPostures(), ", "))
	counters     = flag.String("countermeasures", "off", "crawler countermeasure bundle: "+strings.Join(searchads.CountermeasureBundles(), ", "))
	ckpt         = flag.String("checkpoint", "", "crash-safe checkpoint file (SIGINT writes a final checkpoint before exiting)")
	resume       = flag.Bool("resume", false, "continue from an existing -checkpoint file")
	telemetry    = flag.Bool("telemetry", false, "print the per-stage latency table to stderr after the crawl")
	events       = flag.String("events", "", "stream a JSONL run-event trace to this file while the crawl is live")
	quiet        = flag.Bool("quiet", false, "suppress progress output")
	cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	blockprofile = flag.String("blockprofile", "", "write a pprof blocking profile at exit to this file")
	mutexprofile = flag.String("mutexprofile", "", "write a pprof mutex-contention profile at exit to this file")
)

func main() {
	flag.Parse()
	os.Exit(run())
}

func run() int {
	stopProfiles, err := profiling.Start(profiling.Options{
		CPU: *cpuprofile, Mem: *memprofile, Block: *blockprofile, Mutex: *mutexprofile,
	})
	if err != nil {
		return fail(err)
	}
	defer stopProfiles()

	if *resume && *ckpt == "" {
		return fail(errors.New("-resume requires -checkpoint"))
	}
	if *ckpt != "" && !*resume {
		if _, err := os.Stat(*ckpt); err == nil {
			return fail(fmt.Errorf("checkpoint %s already exists; pass -resume to continue it or delete the file to start over", *ckpt))
		}
	}

	// Telemetry observes, never steers: the dataset is byte-identical
	// with or without it. finish() renders the table, flushes the trace,
	// and keeps a sink failure (exit 3) distinct from a crawl failure.
	var tele *searchads.Telemetry
	if *telemetry || *events != "" {
		tele = searchads.NewTelemetry()
	}
	var eventsFile *os.File
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return fail(err)
		}
		eventsFile = f
		tele.SetSink(bufio.NewWriter(f))
	}
	finish := func(code int) int {
		if *telemetry {
			fmt.Fprint(os.Stderr, tele.Snapshot().Text())
		}
		err := tele.CloseSink()
		if eventsFile != nil {
			if closeErr := eventsFile.Close(); err == nil {
				err = closeErr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "crawl: event trace:", err)
			if code == 0 {
				return 3
			}
		}
		return code
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	cfg := searchads.Config{
		Seed:              *seed,
		QueriesPerEngine:  *queries,
		Iterations:        *iterations,
		NoStealth:         *noStealth,
		SkipRevisit:       *skipRevisit,
		Parallel:          *parallel,
		ReferrerSmuggling: *refSmuggle,
		FaultProfile:      *faults,
		FaultRate:         *faultRate,
		Adversary:         *adversary,
		Countermeasures:   *counters,
		Telemetry:         tele,
	}
	if *engines != "" {
		cfg.Engines = strings.Split(*engines, ",")
	}
	if *partitioned {
		cfg.Storage = searchads.PartitionedStorage
	}
	cfg.Checkpoint = *ckpt

	study := searchads.NewStudy(cfg)
	if !*quiet {
		fmt.Fprintln(os.Stderr, "building world and crawling... (Ctrl-C cancels and keeps the partial dataset)")
	}
	var ds *searchads.Dataset
	var streamErr error
	if cfg.Checkpoint != "" {
		// The checkpointed path: Resume fast-forwards past anything a
		// previous run recorded (a missing file just starts fresh) and
		// hands back the partial dataset on cancellation.
		ds, streamErr = study.Resume(ctx)
		if errors.Is(streamErr, searchads.ErrCheckpointCorrupt) {
			fmt.Fprintf(os.Stderr, "crawl: %v\ncrawl: discarding the damaged checkpoint and restarting from scratch\n", streamErr)
			os.Remove(cfg.Checkpoint)
			study = searchads.NewStudy(cfg)
			ds, streamErr = study.Resume(ctx)
		}
	} else {
		// Assemble the dataset from the stream so a canceled crawl still
		// leaves the iterations crawled so far on disk.
		ds = study.NewDataset()
		for it, err := range study.Iterations(ctx) {
			if err != nil {
				streamErr = err
				break
			}
			ds.Iterations = append(ds.Iterations, it)
		}
	}
	if streamErr != nil && !errors.Is(streamErr, searchads.ErrCanceled) {
		return finish(fail(streamErr))
	}
	if err := ds.Save(*out); err != nil {
		return finish(fail(err))
	}
	if !*quiet {
		errs := 0
		classes := make(map[string]int)
		for _, it := range ds.Iterations {
			if it.Error != "" {
				errs++
				cls := it.ErrorClass
				if cls == "" {
					cls = "other"
				}
				classes[cls]++
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d iterations (%d errors) across %d engines\n",
			*out, len(ds.Iterations), errs, len(ds.Engines()))
		if len(classes) > 0 {
			names := make([]string, 0, len(classes))
			for cls := range classes {
				names = append(names, cls)
			}
			sort.Strings(names)
			parts := make([]string, 0, len(names))
			for _, cls := range names {
				parts = append(parts, fmt.Sprintf("%s=%d", cls, classes[cls]))
			}
			fmt.Fprintf(os.Stderr, "failed iterations by class: %s\n", strings.Join(parts, " "))
		}
	}
	if streamErr != nil {
		fmt.Fprintf(os.Stderr, "crawl: canceled after %d iterations; partial dataset kept: %v\n",
			len(ds.Iterations), streamErr)
		if cfg.Checkpoint != "" {
			fmt.Fprintf(os.Stderr, "crawl: checkpoint written to %s\ncrawl: resume with: %s\n",
				cfg.Checkpoint, resumeInvocation())
		}
		return finish(130)
	}
	return finish(0)
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "crawl:", err)
	return 1
}

// resumeInvocation reconstructs this process's exact command line with
// -resume appended, so the cancellation message is copy-pasteable.
func resumeInvocation() string {
	args := append([]string(nil), os.Args...)
	for _, a := range args[1:] {
		if a == "-resume" || a == "--resume" {
			return strings.Join(args, " ")
		}
	}
	return strings.Join(append(args, "-resume"), " ")
}
