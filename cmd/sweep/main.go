// Command sweep runs a multi-seed, multi-scenario study matrix on a
// bounded worker pool and aggregates the key §4 metrics across seeds
// (mean, stddev, min/max, 95% CI per engine). Each cell's crawl is
// folded one iteration at a time through the incremental analysis, so
// memory stays O(-parallel) iterations however many cells the matrix
// expands to — no cell ever holds a dataset. With -analysis-shards the
// per-cell fold itself is sharded and merged (byte-identical reports),
// for machines with more cores than cells.
//
// Usage:
//
//	sweep -preset paper-baseline -seeds 10
//	sweep -matrix 'storage=flat,partitioned;filter=on,off' -seeds 5 -queries 80
//	sweep -preset adblock-user -seeds 10 -parallel 4 -out sweep.json
//	sweep -preset paper-baseline -cpuprofile cpu.pprof -memprofile mem.pprof
//	sweep -faults bot-hostile -fault-rate 0.05 -seeds 2
//	sweep -matrix 'faults=bot-hostile;fault-rate=0,0.05,0.2' -seeds 2
//	sweep -preset paper-baseline -seeds 10 -progress -telemetry -events trace.jsonl
//
// Injected faults degrade iterations inside their cells (counted per
// error class in each cell result), never the cells themselves: only
// non-fault errors — bad config, cancellation — exit non-zero.
//
// The machine-readable JSON goes to stdout (or -out); the human table
// and progress go to stderr. The exit status is non-zero if any cell
// fails. Ctrl-C (SIGINT/SIGTERM) cancels in-flight cells within one
// crawl iteration, marks queued cells canceled, still emits the
// partial result, and exits 130.
//
// With -checkpoint, the sweep parks completed cells' results and
// in-flight cells' crawled prefixes in a crash-safe progress file;
// SIGINT writes a final checkpoint before exiting 130, and any cell
// error or cancellation prints the exact -resume invocation to stderr.
// Re-running with -resume skips completed cells, continues in-flight
// ones mid-crawl, and produces cells and aggregates byte-identical to
// an uninterrupted sweep. A damaged checkpoint is discarded with a
// warning and the sweep restarts from scratch; a checkpoint from a
// different matrix is a hard error.
//
// -progress keeps a live one-line status on stderr (cells done/total,
// iterations/sec, ETA) when stderr is a terminal; -telemetry prints
// the per-stage latency table after the sweep; -events streams a JSONL
// run-event trace while it is live. None of the three changes a single
// output byte. A sweep that succeeded but could not write or flush its
// -events trace exits 3 — distinct from cell failures (1) and
// cancellation (130).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"searchads"
	"searchads/internal/profiling"
)

var (
	preset       = flag.String("preset", "", "named scenario matrix (paper-baseline, adblock-user, cookieless-web, storage-ablation, stealth-ablation, chaos-robustness, arms-race)")
	matrix       = flag.String("matrix", "", "matrix grammar, e.g. 'storage=flat,partitioned;filter=on,off;engines=bing+google,all'")
	seeds        = flag.Int("seeds", 0, "number of seeds to sweep (seeds seed-base..seed-base+N-1; 0 = the matrix's own seeds, default 1)")
	seedBase     = flag.Int64("seed-base", 1, "first seed when -seeds is set")
	queries      = flag.Int("queries", 50, "queries per engine per cell (yields to the matrix's queries= key unless given explicitly)")
	parallel     = flag.Int("parallel", 0, "cells in flight at once (0 = GOMAXPROCS); also the peak dataset-retention bound")
	shards       = flag.Int("analysis-shards", 0, "per-cell analysis shards (0/1 = sequential fold; cell reports are byte-identical either way)")
	faults       = flag.String("faults", "", "fault-injection profile(s), comma-separated: off, flaky-edge, bot-hostile, brownout (overrides the matrix's faults= key)")
	faultRate    = flag.String("fault-rate", "", "fault-injection rate(s) in [0, 1], comma-separated (overrides the matrix's fault-rate= key)")
	adversary    = flag.String("adversary", "", "adversary posture(s), comma-separated: off, lenient, strict, paranoid (overrides the matrix's adversary= key)")
	counters     = flag.String("cm", "", "countermeasure bundle(s), comma-separated: off, pace, rotate, solve, full (overrides the matrix's cm= key)")
	out          = flag.String("out", "", "write the JSON result to this file (default: stdout)")
	ckpt         = flag.String("checkpoint", "", "crash-safe checkpoint file (SIGINT writes a final checkpoint before exiting)")
	resume       = flag.Bool("resume", false, "continue from an existing -checkpoint file")
	quiet        = flag.Bool("quiet", false, "suppress the progress and table output on stderr")
	progress     = flag.Bool("progress", false, "live one-line progress on stderr (cells done/total, iterations/sec, ETA); auto-disabled when stderr is not a terminal")
	telemetry    = flag.Bool("telemetry", false, "print the per-stage latency table to stderr after the sweep")
	events       = flag.String("events", "", "stream a JSONL run-event trace to this file while the sweep is live")
	cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	blockprofile = flag.String("blockprofile", "", "write a pprof blocking profile at exit to this file")
	mutexprofile = flag.String("mutexprofile", "", "write a pprof mutex-contention profile at exit to this file")
)

// stderrIsTTY reports whether stderr is a character device — the
// -progress line rewrites itself with \r, which only makes sense on a
// terminal, so redirected stderr auto-disables it.
func stderrIsTTY() bool {
	info, err := os.Stderr.Stat()
	return err == nil && info.Mode()&fs.ModeCharDevice != 0
}

func main() {
	flag.Parse()
	os.Exit(run())
}

func run() int {
	stopProfiles, err := profiling.Start(profiling.Options{
		CPU: *cpuprofile, Mem: *memprofile, Block: *blockprofile, Mutex: *mutexprofile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return 1
	}
	defer stopProfiles()

	// Telemetry observes, never steers: results are byte-identical with
	// or without it. finish() renders the table, flushes the trace, and
	// keeps a sink failure (exit 3) distinct from a sweep failure.
	liveProgress := *progress && stderrIsTTY()
	var tele *searchads.Telemetry
	if *telemetry || *events != "" || liveProgress {
		tele = searchads.NewTelemetry()
	}
	var eventsFile *os.File
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return fail(err)
		}
		eventsFile = f
		tele.SetSink(bufio.NewWriter(f))
	}
	finish := func(code int) int {
		if *telemetry {
			fmt.Fprint(os.Stderr, tele.Snapshot().Text())
		}
		err := tele.CloseSink()
		if eventsFile != nil {
			if closeErr := eventsFile.Close(); err == nil {
				err = closeErr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep: event trace:", err)
			if code == 0 {
				return 3
			}
		}
		return code
	}

	m := searchads.SweepMatrix{}
	if *preset != "" {
		var err error
		if m, err = searchads.SweepPreset(*preset); err != nil {
			return finish(fail(err))
		}
	}
	if *matrix != "" {
		over, err := searchads.ParseSweepMatrix(*matrix)
		if err != nil {
			return finish(fail(err))
		}
		m = m.Overlay(over)
	}
	if *seeds > 0 {
		m.Seeds = make([]int64, *seeds)
		for i := range m.Seeds {
			m.Seeds[i] = *seedBase + int64(i)
		}
	}
	// The fault flags reuse the matrix grammar so the values validate
	// one way ("faults=bot-hostile" ≡ -faults bot-hostile).
	if *faults != "" {
		over, err := searchads.ParseSweepMatrix("faults=" + *faults)
		if err != nil {
			return finish(fail(err))
		}
		m.FaultProfiles = over.FaultProfiles
	}
	if *faultRate != "" {
		over, err := searchads.ParseSweepMatrix("fault-rate=" + *faultRate)
		if err != nil {
			return finish(fail(err))
		}
		m.FaultRates = over.FaultRates
	}
	if *adversary != "" {
		over, err := searchads.ParseSweepMatrix("adversary=" + *adversary)
		if err != nil {
			return finish(fail(err))
		}
		m.Adversaries = over.Adversaries
	}
	if *counters != "" {
		over, err := searchads.ParseSweepMatrix("cm=" + *counters)
		if err != nil {
			return finish(fail(err))
		}
		m.Countermeasures = over.Countermeasures
	}
	// The -queries default must not clobber a queries= value from the
	// matrix grammar or a preset; only an explicitly passed flag wins.
	queriesSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "queries" {
			queriesSet = true
		}
	})
	if queriesSet || m.QueriesPerEngine == 0 {
		m.QueriesPerEngine = *queries
	}

	if *resume && *ckpt == "" {
		return finish(fail(errors.New("-resume requires -checkpoint")))
	}
	if *ckpt != "" && !*resume {
		if _, err := os.Stat(*ckpt); err == nil {
			return finish(fail(fmt.Errorf("checkpoint %s already exists; pass -resume to continue it or delete the file to start over", *ckpt)))
		}
	}

	var cellsDone, cellsTotal atomic.Int64
	opts := searchads.SweepOptions{Parallel: *parallel, AnalysisShards: *shards, Checkpoint: *ckpt, Telemetry: tele}
	opts.OnCellDone = func(done, total int, c searchads.SweepCell, err error) {
		cellsDone.Store(int64(done))
		cellsTotal.Store(int64(total))
		if *quiet {
			return
		}
		status := "ok"
		if err != nil {
			status = "FAILED: " + err.Error()
		}
		prefix := ""
		if liveProgress {
			prefix = "\r\x1b[K" // overwrite the live progress line
		}
		fmt.Fprintf(os.Stderr, "%s[%d/%d] %s seed=%d %s\n", prefix, done, total, c.Scenario, c.Seed, status)
	}

	// The live progress line rewrites itself twice a second from the
	// telemetry snapshot until the sweep returns.
	stopProgress := func() {}
	if liveProgress {
		quitProgress := make(chan struct{})
		progressDone := make(chan struct{})
		go func() {
			defer close(progressDone)
			start := time.Now()
			tick := time.NewTicker(500 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-quitProgress:
					fmt.Fprint(os.Stderr, "\r\x1b[K")
					return
				case <-tick.C:
					d, t := cellsDone.Load(), cellsTotal.Load()
					eta := "?"
					if d > 0 && t > d {
						remain := time.Duration(float64(time.Since(start)) / float64(d) * float64(t-d))
						eta = remain.Truncate(time.Second).String()
					}
					fmt.Fprintf(os.Stderr, "\r\x1b[Ksweep: %d/%d cells, %.0f iterations/sec, ETA %s",
						d, t, tele.Snapshot().IterationsPerSec, eta)
				}
			}
		}()
		stopProgress = func() { close(quitProgress); <-progressDone }
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	res, sweepErr := searchads.Sweep(ctx, m, opts)
	if res == nil {
		// The checkpoint refused to load before any cell ran. Damage is
		// recoverable — discard and start over; a mismatch (checkpoint
		// from a different matrix) is a hard error.
		if errors.Is(sweepErr, searchads.ErrCheckpointCorrupt) {
			fmt.Fprintf(os.Stderr, "sweep: %v\nsweep: discarding the damaged checkpoint and restarting from scratch\n", sweepErr)
			os.Remove(*ckpt)
			res, sweepErr = searchads.Sweep(ctx, m, opts)
		}
		if res == nil {
			stopProgress()
			return finish(fail(sweepErr))
		}
	}
	stopProgress()

	data, err := res.JSON()
	if err != nil {
		return finish(fail(err))
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return finish(fail(err))
		}
	} else {
		os.Stdout.Write(data)
		fmt.Println()
	}
	if !*quiet {
		fmt.Fprint(os.Stderr, res.Render())
	}
	if sweepErr != nil {
		if *ckpt != "" {
			fmt.Fprintf(os.Stderr, "sweep: checkpoint written to %s\nsweep: resume with: %s\n",
				*ckpt, resumeInvocation())
		}
		if errors.Is(sweepErr, searchads.ErrCanceled) {
			fmt.Fprintf(os.Stderr, "sweep: canceled with %d cell(s) unfinished; partial results above\n",
				res.CellErrors)
			return finish(130)
		}
		fmt.Fprintf(os.Stderr, "sweep: %d cell(s) failed:\n%s\n",
			res.CellErrors, indent(sweepErr.Error()))
		return finish(1)
	}
	return finish(0)
}

// resumeInvocation reconstructs this process's exact command line with
// -resume appended, so the failure message is copy-pasteable.
func resumeInvocation() string {
	args := append([]string(nil), os.Args...)
	for _, a := range args[1:] {
		if a == "-resume" || a == "--resume" {
			return strings.Join(args, " ")
		}
	}
	return strings.Join(append(args, "-resume"), " ")
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	return 1
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
