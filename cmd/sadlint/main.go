// Sadlint is the repo's static-analysis multichecker: it runs the
// internal/lint suite — detclock, detrand, maporder, errclass,
// ctxflow, exitsafe — over the named packages and reports every
// invariant violation.
//
// Usage:
//
//	sadlint [-json] [-checks detclock,maporder,...] [packages]
//
// With no packages, ./... is checked. -json emits the findings as a
// JSON array (the CI artifact format, stable order); the default is
// one file:line:col line per finding. -checks restricts the run to a
// comma-separated subset of analyzers.
//
// Exit codes: 0 clean, 1 findings, 2 load or usage error. CI treats
// any non-zero as red.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"searchads/internal/lint"
)

func main() { os.Exit(run()) }

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (CI artifact format)")
	checks := flag.String("checks", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*checks, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sadlint:", err)
			return 2
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sadlint:", err)
		return 2
	}
	diags := lint.RunPackages(pkgs, analyzers)

	// Report paths relative to the working directory so CI artifacts
	// diff cleanly across runners.
	if wd, err := os.Getwd(); err == nil {
		for i := range diags {
			if rel, err := filepath.Rel(wd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
				diags[i].File = rel
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "sadlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sadlint: %d finding%s in %d package%s\n",
			len(diags), plural(len(diags)), len(pkgs), plural(len(pkgs)))
		return 1
	}
	return 0
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}
