// Command filtercheck tests URLs against the embedded
// EasyList/EasyPrivacy-style filter lists, uBlock-style.
//
// Usage:
//
//	filtercheck [-type script] [-first-party shop.example] URL...
//	echo 'https://bat.bing.com/bat.js' | filtercheck -stdin
//
// Stdin mode matches all URLs as one Engine.MatchBatch call; -stats
// prints the shape of the engine's token index.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/url"
	"os"

	"searchads/internal/filterlist"
	"searchads/internal/netsim"
	"searchads/internal/urlx"
)

var (
	typ        = flag.String("type", "document", "resource type (document, script, image, xmlhttprequest, ping, ...)")
	firstParty = flag.String("first-party", "", "first-party site (default: the URL's own site)")
	stdin      = flag.Bool("stdin", false, "read URLs from stdin, one per line")
	stats      = flag.Bool("stats", false, "print token-index statistics")
)

func main() {
	flag.Parse()
	os.Exit(run())
}

func run() int {
	engine := filterlist.DefaultEngine()
	fmt.Fprintf(os.Stderr, "loaded %d rules (%d lines skipped)\n", engine.Len(), engine.Skipped())
	if *stats {
		s := engine.Stats()
		fmt.Fprintf(os.Stderr, "token index: %d block buckets (%d tokenless, %d host-anchored), %d exception buckets (%d tokenless, %d host-anchored), largest bucket %d rules\n",
			s.BlockBuckets, s.BlockTokenless, s.BlockHostRules, s.ExceptBuckets, s.ExceptTokenless, s.ExceptHostRules, s.MaxBucket)
	}

	info := func(raw string) (filterlist.RequestInfo, error) {
		u, err := url.Parse(raw)
		if err != nil {
			return filterlist.RequestInfo{}, err
		}
		fp := *firstParty
		if fp == "" {
			fp = urlx.RegistrableDomain(u.Host)
		}
		return filterlist.RequestInfo{
			URL:        raw,
			Type:       netsim.ResourceType(*typ),
			FirstParty: fp,
			ThirdParty: urlx.RegistrableDomain(u.Host) != fp,
		}, nil
	}
	report := func(raw string, rule *filterlist.Rule, blocked bool) {
		switch {
		case blocked:
			fmt.Printf("%-60s BLOCKED by %s rule %q\n", raw, rule.List, rule.Raw)
		case rule != nil:
			fmt.Printf("%-60s ALLOWED (exception over %q)\n", raw, rule.Raw)
		default:
			fmt.Printf("%-60s clean\n", raw)
		}
	}

	if *stdin {
		var raws []string
		var infos []filterlist.RequestInfo
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				continue
			}
			ri, err := info(line)
			if err != nil {
				fmt.Printf("%-60s ERROR %v\n", line, err)
				continue
			}
			raws = append(raws, line)
			infos = append(infos, ri)
		}
		for i, v := range engine.MatchBatch(infos) {
			report(raws[i], v.Rule, v.Blocked)
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "filtercheck: reading stdin: %v\n", err)
			return 1
		}
		return 0
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: filtercheck [flags] URL...")
		return 2
	}
	for _, raw := range flag.Args() {
		ri, err := info(raw)
		if err != nil {
			fmt.Printf("%-60s ERROR %v\n", raw, err)
			continue
		}
		rule, blocked := engine.Match(ri)
		report(raw, rule, blocked)
	}
	return 0
}
