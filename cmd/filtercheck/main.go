// Command filtercheck tests URLs against the embedded
// EasyList/EasyPrivacy-style filter lists, uBlock-style.
//
// Usage:
//
//	filtercheck [-type script] [-first-party shop.example] URL...
//	echo 'https://bat.bing.com/bat.js' | filtercheck -stdin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/url"
	"os"

	"searchads/internal/filterlist"
	"searchads/internal/netsim"
	"searchads/internal/urlx"
)

func main() {
	var (
		typ        = flag.String("type", "document", "resource type (document, script, image, xmlhttprequest, ping, ...)")
		firstParty = flag.String("first-party", "", "first-party site (default: the URL's own site)")
		stdin      = flag.Bool("stdin", false, "read URLs from stdin, one per line")
	)
	flag.Parse()

	engine := filterlist.DefaultEngine()
	fmt.Fprintf(os.Stderr, "loaded %d rules (%d lines skipped)\n", engine.Len(), engine.Skipped())

	check := func(raw string) {
		u, err := url.Parse(raw)
		if err != nil {
			fmt.Printf("%-60s ERROR %v\n", raw, err)
			return
		}
		fp := *firstParty
		if fp == "" {
			fp = urlx.RegistrableDomain(u.Host)
		}
		info := filterlist.RequestInfo{
			URL:        raw,
			Type:       netsim.ResourceType(*typ),
			FirstParty: fp,
			ThirdParty: urlx.RegistrableDomain(u.Host) != fp,
		}
		rule, blocked := engine.Match(info)
		switch {
		case blocked:
			fmt.Printf("%-60s BLOCKED by %s rule %q\n", raw, rule.List, rule.Raw)
		case rule != nil:
			fmt.Printf("%-60s ALLOWED (exception over %q)\n", raw, rule.Raw)
		default:
			fmt.Printf("%-60s clean\n", raw)
		}
	}

	if *stdin {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if line := sc.Text(); line != "" {
				check(line)
			}
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: filtercheck [flags] URL...")
		os.Exit(2)
	}
	for _, raw := range flag.Args() {
		check(raw)
	}
}
