// Command servesim serves the simulated web on a real loopback listener
// through netsim.HTTPBridge, so the ecosystem can be inspected with curl
// or a browser:
//
//	servesim -addr 127.0.0.1:8080 &
//	curl -H 'Host: www.bing.com' 'http://127.0.0.1:8080/search?q=buy+shoes'
//
// Host routing follows the Host header; redirect chains can be walked by
// re-issuing the Location URL with the corresponding Host.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"searchads"
	"searchads/internal/netsim"
)

var (
	addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
	seed    = flag.Int64("seed", 20221001, "world seed")
	queries = flag.Int("queries", 50, "queries per engine (sizes the ad pools)")
)

func main() {
	flag.Parse()
	os.Exit(run())
}

func run() int {
	study := searchads.NewStudy(searchads.Config{Seed: *seed, QueriesPerEngine: *queries})
	world := study.World()
	fmt.Fprint(os.Stderr, world.Describe())
	fmt.Fprintf(os.Stderr, "listening on http://%s (route with the Host header)\n", *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           &netsim.HTTPBridge{Net: world.Net},
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "servesim: shutdown:", err)
		}
	}()
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "servesim:", err)
		return 1
	}
	return 0
}
