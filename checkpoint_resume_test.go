package searchads_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"searchads"
)

// killAt returns a config whose Sink cancels ctx after n live
// iterations — the deterministic abort hook behind the kill-point
// chaos harness. The iteration that trips the hook is still recorded;
// the crawl aborts at the next iteration boundary, exactly like a
// SIGINT between iterations.
func killAt(cfg searchads.Config, n int, cancel context.CancelFunc) searchads.Config {
	count := 0
	cfg.Sink = func(*searchads.Iteration) {
		if count++; count == n {
			cancel()
		}
	}
	return cfg
}

// runToCompletion drives kill → resume cycles until one run finishes,
// re-rolling the kill point and parallelism each round, and returns the
// finishing study (its dataset and report caches populated).
func runToCompletion(t *testing.T, base searchads.Config, gen *rand.Rand) (*searchads.Study, int) {
	t.Helper()
	kills := 0
	for round := 0; ; round++ {
		if round > 50 {
			t.Fatal("kill/resume loop does not converge")
		}
		cfg := base
		cfg.Parallel = gen.Intn(2) == 1
		ctx, cancel := context.WithCancel(context.Background())
		cfg = killAt(cfg, 1+gen.Intn(8), cancel)
		st := searchads.NewStudy(cfg)
		_, err := st.Resume(ctx)
		cancel()
		if err == nil {
			return st, kills
		}
		if !errors.Is(err, searchads.ErrCanceled) {
			t.Fatalf("round %d: %v", round, err)
		}
		kills++
		if _, err := os.Stat(base.Checkpoint); err != nil {
			t.Fatalf("round %d: killed run left no checkpoint: %v", round, err)
		}
	}
}

// TestStudyKillResumeByteIdentical is the PR's correctness bar: kill a
// checkpointed study at a random iteration boundary, resume it (with a
// freshly rolled parallelism), repeat through chained kills — the final
// dataset bytes and both report forms must equal the uninterrupted
// run's exactly.
func TestStudyKillResumeByteIdentical(t *testing.T) {
	gen := rand.New(rand.NewSource(20230901))
	for trial := 0; trial < 4; trial++ {
		base := searchads.Config{
			Seed:             int64(500 + trial),
			Engines:          []string{searchads.Bing, searchads.Google},
			QueriesPerEngine: 5,
			CheckpointEvery:  1 + gen.Intn(6), // exercise the periodic-write path too
		}
		plain := searchads.NewStudy(base)
		wantDS, err := plain.Crawl(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		wantReport, err := plain.Analyze(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		wantBytes := saveBytes(t, wantDS)
		wantJSON, _ := json.Marshal(wantReport)

		base.Checkpoint = filepath.Join(t.TempDir(), "run.ckpt")
		st, kills := runToCompletion(t, base, gen)
		gotDS, err := st.Resume(context.Background()) // cached now
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(saveBytes(t, gotDS), wantBytes) {
			t.Fatalf("trial %d (seed=%d, %d kills): resumed dataset diverges", trial, base.Seed, kills)
		}
		gotReport, err := st.Analyze(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if gotReport.Render() != wantReport.Render() {
			t.Fatalf("trial %d: resumed rendered report diverges", trial)
		}
		gotJSON, _ := json.Marshal(gotReport)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("trial %d: resumed report JSON diverges", trial)
		}
		if _, err := os.Stat(base.Checkpoint); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("trial %d: checkpoint survived a completed run: %v", trial, err)
		}
		if kills == 0 {
			t.Logf("trial %d completed without a kill — raise the iteration count if this recurs", trial)
		}
	}
}

// TestCheckpointOffByteIdentical pins the no-regression guarantee:
// enabling checkpointing on an uninterrupted run changes no output
// byte, and the checkpoint file does not outlive the run.
func TestCheckpointOffByteIdentical(t *testing.T) {
	base := searchads.Config{Seed: 77, Engines: []string{searchads.Bing}, QueriesPerEngine: 6}
	plain, err := searchads.NewStudy(base).Crawl(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Checkpoint = filepath.Join(t.TempDir(), "run.ckpt")
	cfg.CheckpointEvery = 2
	ckpt, err := searchads.NewStudy(cfg).Crawl(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, plain), saveBytes(t, ckpt)) {
		t.Fatal("checkpointing changed dataset bytes")
	}
	if _, err := os.Stat(cfg.Checkpoint); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint survived a completed Crawl: %v", err)
	}
}

// TestResumeCorruptCheckpoint pins the damage contract: a damaged file
// surfaces ErrCheckpointCorrupt — never a resumed crawl over damaged
// state — and deleting it restarts cleanly to the correct bytes.
func TestResumeCorruptCheckpoint(t *testing.T) {
	base := searchads.Config{Seed: 9, Engines: []string{searchads.Bing}, QueriesPerEngine: 5}
	want, err := searchads.NewStudy(base).Crawl(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Checkpoint = filepath.Join(t.TempDir(), "run.ckpt")

	// A killed run leaves a valid checkpoint; truncate it mid-payload.
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := searchads.NewStudy(killAt(cfg, 2, cancel)).Resume(ctx); !errors.Is(err, searchads.ErrCanceled) {
		t.Fatalf("kill run: %v", err)
	}
	cancel()
	data, err := os.ReadFile(cfg.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string][]byte{
		"truncated": data[:len(data)-9],
		"garbage":   []byte("not a checkpoint at all"),
		"bitflip":   append(append([]byte{}, data[:len(data)-5]...), data[len(data)-5]^0x10, data[len(data)-4], data[len(data)-3], data[len(data)-2], data[len(data)-1]),
	} {
		if err := os.WriteFile(cfg.Checkpoint, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := searchads.NewStudy(cfg).Resume(context.Background())
		if !errors.Is(err, searchads.ErrCheckpointCorrupt) {
			t.Fatalf("%s checkpoint: got %v, want ErrCheckpointCorrupt", name, err)
		}
	}

	// Clean restart: remove the damaged file, resume fresh, compare.
	if err := os.Remove(cfg.Checkpoint); err != nil {
		t.Fatal(err)
	}
	got, err := searchads.NewStudy(cfg).Resume(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, want)) {
		t.Fatal("clean restart after corruption diverges from the plain run")
	}
}

// TestResumeMismatchedCheckpoint pins the identity contract: a
// checkpoint from a different configuration refuses to resume, while a
// parallelism change — which cannot affect output bytes — is accepted.
func TestResumeMismatchedCheckpoint(t *testing.T) {
	cfg := searchads.Config{
		Seed:             4,
		Engines:          []string{searchads.Bing, searchads.DuckDuckGo},
		QueriesPerEngine: 5,
		Checkpoint:       filepath.Join(t.TempDir(), "run.ckpt"),
	}
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := searchads.NewStudy(killAt(cfg, 3, cancel)).Resume(ctx); !errors.Is(err, searchads.ErrCanceled) {
		t.Fatalf("kill run: %v", err)
	}
	cancel()

	other := cfg
	other.Seed = 5
	if _, err := searchads.NewStudy(other).Resume(context.Background()); !errors.Is(err, searchads.ErrCheckpointMismatch) {
		t.Fatalf("seed change: got %v, want ErrCheckpointMismatch", err)
	}
	other = cfg
	other.Storage = searchads.PartitionedStorage
	if _, err := searchads.NewStudy(other).Resume(context.Background()); !errors.Is(err, searchads.ErrCheckpointMismatch) {
		t.Fatalf("storage change: got %v, want ErrCheckpointMismatch", err)
	}

	flipped := cfg
	flipped.Parallel = true
	if _, err := searchads.NewStudy(flipped).Resume(context.Background()); err != nil {
		t.Fatalf("parallelism change refused: %v", err)
	}
}

// TestResumeRequiresCheckpoint pins the API contract.
func TestResumeRequiresCheckpoint(t *testing.T) {
	_, err := searchads.NewStudy(searchads.Config{Seed: 1}).Resume(context.Background())
	if err == nil {
		t.Fatal("Resume without Config.Checkpoint accepted")
	}
}
